"""Tests for repro.sched: width bucketing, the cross-table inference
batcher, the no-grad memo caches, and — the load-bearing property —
bitwise equivalence of sequential, pipelined-unbatched and batched runs."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import (
    BatchingConfig,
    DetectOptions,
    DetectorConfig,
    TasteDetector,
    ThresholdPolicy,
)
from repro.db import CloudDatabaseServer, CostModel
from repro.faults import FaultPlan, FaultRule
from repro.features.encoding import TokenEncodeCache
from repro.nn import ArrayKeyLRU
from repro.obs.metrics import MetricsRegistry
from repro.sched import (
    InferenceBatcher,
    Phase1Request,
    Phase1Result,
    bucket_width,
    group_requests,
    run_grouped,
)

FAST = CostModel(time_scale=0.0)


# ----------------------------------------------------------------------
# Width bucketing + config validation
# ----------------------------------------------------------------------
class TestBucketWidth:
    def test_rounds_up_to_quantum(self):
        assert bucket_width(0, 16) == 16
        assert bucket_width(1, 16) == 16
        assert bucket_width(16, 16) == 16
        assert bucket_width(17, 16) == 32
        assert bucket_width(129, 64) == 192

    def test_cap_never_truncates_real_length(self):
        # Under the cap: normal quantization, clipped to the cap.
        assert bucket_width(90, 16, cap=96) == 96
        # Over the cap the exact length survives (the encoder itself
        # decides whether to reject it; bucketing must not lie about it).
        assert bucket_width(100, 16, cap=96) == 100

    def test_monotonic_in_length(self):
        widths = [bucket_width(n, 16, cap=512) for n in range(0, 600, 7)]
        assert widths == sorted(widths)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            bucket_width(-1, 16)


class TestBatchingConfig:
    def test_defaults_valid(self):
        config = BatchingConfig()
        assert config.enabled and config.adaptive
        assert config.max_batch_cols >= 1 and config.pad_quantum >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch_cols": 0},
            {"max_wait_ms": -1.0},
            {"pad_quantum": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BatchingConfig(**kwargs)

    def test_replace_revalidates(self):
        config = BatchingConfig()
        assert config.replace(max_batch_cols=8).max_batch_cols == 8
        with pytest.raises(ValueError):
            config.replace(pad_quantum=-2)


# ----------------------------------------------------------------------
# Featurizer token-id memo
# ----------------------------------------------------------------------
class TestTokenEncodeCache:
    def test_hit_and_miss_counting(self, tokenizer):
        cache = TokenEncodeCache(tokenizer, capacity=8)
        first = cache.encode("customer email address")
        again = cache.encode("customer email address")
        other = cache.encode("customer phone number")
        assert first == again == tokenizer.encode("customer email address")
        assert other == tokenizer.encode("customer phone number")
        assert cache.hits == 1 and cache.misses == 2

    def test_returns_fresh_lists(self, tokenizer):
        cache = TokenEncodeCache(tokenizer, capacity=8)
        ids = cache.encode("customer email address")
        ids.append(-1)  # caller-side mutation must not poison the cache
        assert cache.encode("customer email address") == ids[:-1]

    def test_distinct_options_are_distinct_entries(self, tokenizer):
        cache = TokenEncodeCache(tokenizer, capacity=8)
        cache.encode("email address", max_len=4)
        cache.encode("email address", max_len=8)
        assert cache.misses == 2 and cache.hits == 0

    def test_capacity_evicts_lru(self, tokenizer):
        cache = TokenEncodeCache(tokenizer, capacity=2)
        cache.encode("alpha")
        cache.encode("beta")
        cache.encode("gamma")  # evicts "alpha"
        cache.encode("alpha")
        assert cache.hits == 0 and cache.misses == 4


# ----------------------------------------------------------------------
# Array-keyed kernel memo
# ----------------------------------------------------------------------
class TestArrayKeyLRU:
    def test_builds_once_per_key(self):
        memo = ArrayKeyLRU("test", capacity=4)
        calls = []

        def build(array):
            calls.append(1)
            return array * 2.0

        key = np.arange(4, dtype=np.float32)
        first = memo.get(key, build)
        second = memo.get(key.copy(), build)  # equal content, new object
        assert len(calls) == 1
        assert first is second
        np.testing.assert_array_equal(first, key * 2.0)
        assert memo.hits == 1 and memo.misses == 1

    def test_cached_arrays_are_read_only(self):
        memo = ArrayKeyLRU("test", capacity=4)
        built = memo.get(np.ones(3), lambda a: a + 1.0)
        assert not built.flags.writeable

    def test_capacity_evicts(self):
        memo = ArrayKeyLRU("test", capacity=2)
        for value in (1.0, 2.0, 3.0):
            memo.get(np.full(2, value), lambda a: a.copy())
        memo.get(np.full(2, 1.0), lambda a: a.copy())  # was evicted
        assert memo.misses == 4 and len(memo) == 2

    def test_tuple_keys(self):
        memo = ArrayKeyLRU("test", capacity=4)
        a, b = np.arange(3), np.arange(3, 6)
        memo.get((a, b), lambda x, y: x + y)
        memo.get((a, b), lambda x, y: x + y)
        memo.get((b, a), lambda x, y: x + y)  # order matters
        assert memo.hits == 1 and memo.misses == 2


# ----------------------------------------------------------------------
# Batcher mechanics (driven directly, no executor)
# ----------------------------------------------------------------------
def _phase1_requests(featurizer, tables, quantum=16):
    requests = []
    for table in tables:
        encoded = featurizer.encode_offline(table, with_content=False, with_labels=False)
        width = bucket_width(len(encoded.meta.token_ids), quantum, cap=512)
        requests.append(Phase1Request(encoded=encoded, meta_width=width))
    return requests


class TestInferenceBatcher:
    def test_submit_outside_serving_raises(self, untrained_model, featurizer, tiny_corpus):
        batcher = InferenceBatcher(
            untrained_model, BatchingConfig(), metrics=MetricsRegistry()
        )
        request = _phase1_requests(featurizer, tiny_corpus.tables[:1])[0]
        with pytest.raises(RuntimeError, match="not serving"):
            batcher.submit(request)

    def test_results_match_local_forwards_bitwise(
        self, untrained_model, featurizer, tiny_corpus
    ):
        requests = _phase1_requests(featurizer, tiny_corpus.tables[:4])
        reference = run_grouped(untrained_model, requests, coalesce=False)
        batcher = InferenceBatcher(
            untrained_model, BatchingConfig(), metrics=MetricsRegistry()
        )
        with batcher.serving():
            batched = batcher.run(requests)
        assert all(isinstance(result, Phase1Result) for result in batched)
        for ref, got in zip(reference, batched):
            assert ref.probs.tobytes() == got.probs.tobytes()
            assert ref.encoding.meta_logits.tobytes() == got.encoding.meta_logits.tobytes()
            for ref_layer, got_layer in zip(
                ref.encoding.layer_outputs, got.encoding.layer_outputs
            ):
                assert ref_layer.tobytes() == got_layer.tobytes()

    def test_full_flush_when_cols_exceed_budget(
        self, untrained_model, featurizer, tiny_corpus
    ):
        metrics = MetricsRegistry()
        config = BatchingConfig(max_batch_cols=2, max_wait_ms=500.0, adaptive=False)
        batcher = InferenceBatcher(untrained_model, config, metrics=metrics)
        requests = _phase1_requests(featurizer, tiny_corpus.tables[:3])
        with batcher.serving():
            batcher.run(requests)
        assert metrics.counter("sched.flush_reason", reason="full").value >= 1

    def test_timeout_flush_when_not_adaptive(
        self, untrained_model, featurizer, tiny_corpus
    ):
        metrics = MetricsRegistry()
        config = BatchingConfig(max_batch_cols=10_000, max_wait_ms=5.0, adaptive=False)
        batcher = InferenceBatcher(untrained_model, config, metrics=metrics)
        requests = _phase1_requests(featurizer, tiny_corpus.tables[:2])
        with batcher.serving():
            batcher.run(requests)
        assert metrics.counter("sched.flush_reason", reason="timeout").value >= 1

    def test_idle_flush_beats_long_timeout(
        self, untrained_model, featurizer, tiny_corpus
    ):
        metrics = MetricsRegistry()
        # Timeout alone would stall each flush for 10s; the adaptive idle
        # rule (no prep backlog, all infer stages already waiting) must
        # flush immediately instead. The 60s join timeout is the failure
        # detector: a hang here means the idle rule regressed.
        config = BatchingConfig(max_batch_cols=10_000, max_wait_ms=10_000.0)
        batcher = InferenceBatcher(untrained_model, config, metrics=metrics)
        requests = _phase1_requests(featurizer, tiny_corpus.tables[:2])
        results = []
        with batcher.serving():
            batcher.note_state(0, 1)
            thread = threading.Thread(
                target=lambda: results.extend(batcher.run(requests))
            )
            thread.start()
            thread.join(timeout=60.0)
            assert not thread.is_alive(), "idle flush never fired"
        assert len(results) == len(requests)
        assert metrics.counter("sched.flush_reason", reason="idle").value >= 1

    def test_failed_forward_fails_only_its_batch(
        self, untrained_model, featurizer, tiny_corpus
    ):
        batcher = InferenceBatcher(
            untrained_model,
            BatchingConfig(max_wait_ms=1.0),
            metrics=MetricsRegistry(),
        )
        bad = Phase1Request(encoded=None, meta_width=16)  # forward will raise
        good = _phase1_requests(featurizer, tiny_corpus.tables[:1])
        with batcher.serving():
            with pytest.raises(Exception):
                batcher.run([bad])
            # The compute thread survived the failed batch and still
            # serves later submitters.
            results = batcher.run(good)
        assert len(results) == 1 and isinstance(results[0], Phase1Result)

    def test_abandoned_future_does_not_wedge_others(
        self, untrained_model, featurizer, tiny_corpus
    ):
        """A submitter killed after submit() (retry give-up) must not block
        the batcher: other submitters keep getting results and shutdown
        still drains."""
        batcher = InferenceBatcher(
            untrained_model,
            BatchingConfig(max_wait_ms=2.0),
            metrics=MetricsRegistry(),
        )
        requests = _phase1_requests(featurizer, tiny_corpus.tables[:6])
        outcomes: dict[int, int] = {}
        lock = threading.Lock()

        def submitter(index: int, abandon: bool) -> None:
            futures = batcher.submit_many([requests[index]])
            if abandon:
                return  # simulates a job killed by retry give-up
            result = futures[0].result(timeout=30.0)
            with lock:
                outcomes[index] = len(result.probs)

        with batcher.serving():
            threads = [
                threading.Thread(target=submitter, args=(i, i % 3 == 0))
                for i in range(len(requests))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
            assert not any(thread.is_alive() for thread in threads)
        waited = [i for i in range(len(requests)) if i % 3 != 0]
        assert sorted(outcomes) == waited
        assert not batcher.is_serving()

    def test_stress_many_threads_with_giveups_never_deadlocks(
        self, untrained_model, featurizer, tiny_corpus
    ):
        batcher = InferenceBatcher(
            untrained_model,
            BatchingConfig(max_batch_cols=16, max_wait_ms=1.0),
            metrics=MetricsRegistry(),
        )
        requests = _phase1_requests(featurizer, tiny_corpus.tables[:8])
        errors: list[BaseException] = []
        completed = []
        lock = threading.Lock()

        def hammer(worker: int) -> None:
            try:
                for round_index in range(5):
                    request = requests[(worker + round_index) % len(requests)]
                    futures = batcher.submit_many([request])
                    if (worker + round_index) % 4 == 0:
                        continue  # abandon: the give-up path
                    futures[0].result(timeout=30.0)
                    with lock:
                        completed.append((worker, round_index))
            except BaseException as error:  # pragma: no cover - failure path
                with lock:
                    errors.append(error)

        with batcher.serving():
            threads = [threading.Thread(target=hammer, args=(w,)) for w in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
            stuck = [thread for thread in threads if thread.is_alive()]
            assert not stuck, f"{len(stuck)} submitter threads deadlocked"
        assert not errors
        assert len(completed) == 8 * 5 - sum(
            1 for w in range(8) for r in range(5) if (w + r) % 4 == 0
        )

    def test_group_requests_partitions_by_width(self, featurizer, tiny_corpus):
        requests = _phase1_requests(featurizer, tiny_corpus.tables[:6])
        groups = group_requests(requests)
        recovered = [None] * len(requests)
        for indices, subset in groups:
            widths = {r.meta_width for r in subset}
            assert len(widths) == 1
            for index, request in zip(indices, subset):
                recovered[index] = request
        assert recovered == requests


# ----------------------------------------------------------------------
# End-to-end equivalence: the whole point of width bucketing
# ----------------------------------------------------------------------
def _detect(model, featurizer, tables, config, options=None):
    server = CloudDatabaseServer.from_tables(tables, FAST)
    detector = TasteDetector(
        model, featurizer, ThresholdPolicy(0.3, 0.7), config=config
    )
    report = detector.detect(server, options=options)
    return detector, report


def _assert_reports_bitwise_equal(report_a, report_b):
    preds_a = sorted(
        (p for t in report_a.tables for p in t.predictions),
        key=lambda p: (p.table_name, p.column_name),
    )
    preds_b = sorted(
        (p for t in report_b.tables for p in t.predictions),
        key=lambda p: (p.table_name, p.column_name),
    )
    assert len(preds_a) == len(preds_b)
    for a, b in zip(preds_a, preds_b):
        assert (a.table_name, a.column_name) == (b.table_name, b.column_name)
        assert a.phase == b.phase
        assert a.admitted_types == b.admitted_types
        assert a.probabilities.tobytes() == b.probabilities.tobytes()


def _assert_caches_bitwise_equal(cache_a, cache_b):
    keys_a, keys_b = sorted(cache_a._store), sorted(cache_b._store)
    assert keys_a == keys_b
    for key in keys_a:
        entry_a, entry_b = cache_a._store[key], cache_b._store[key]
        assert len(entry_a.layer_outputs) == len(entry_b.layer_outputs)
        for layer_a, layer_b in zip(entry_a.layer_outputs, entry_b.layer_outputs):
            assert layer_a.tobytes() == layer_b.tobytes()
        assert entry_a.meta_mask.tobytes() == entry_b.meta_mask.tobytes()
        assert entry_a.col_positions.tobytes() == entry_b.col_positions.tobytes()
        assert entry_a.numeric.tobytes() == entry_b.numeric.tobytes()
        assert entry_a.meta_logits.tobytes() == entry_b.meta_logits.tobytes()


class TestBatchedEquivalence:
    def test_sequential_vs_pipelined_batched_bitwise(
        self, trained_model, featurizer, tiny_corpus
    ):
        tables = tiny_corpus.train[:10]
        seq_detector, seq_report = _detect(
            trained_model, featurizer, tables, DetectorConfig(pipelined=False)
        )
        bat_detector, bat_report = _detect(
            trained_model,
            featurizer,
            tables,
            DetectorConfig(pipelined=True, infer_workers=2),
        )
        assert bat_detector.batcher is not None
        _assert_reports_bitwise_equal(seq_report, bat_report)
        _assert_caches_bitwise_equal(seq_detector.cache, bat_detector.cache)

    def test_pipelined_unbatched_matches_batched(
        self, trained_model, featurizer, tiny_corpus
    ):
        tables = tiny_corpus.train[:10]
        off_detector, off_report = _detect(
            trained_model,
            featurizer,
            tables,
            DetectorConfig(
                pipelined=True,
                infer_workers=2,
                batching=BatchingConfig(enabled=False),
            ),
        )
        assert off_detector.batcher is None
        _, on_report = _detect(
            trained_model,
            featurizer,
            tables,
            DetectorConfig(pipelined=True, infer_workers=2),
        )
        _assert_reports_bitwise_equal(off_report, on_report)

    def test_equivalence_under_fault_plan(
        self, untrained_model, featurizer, tiny_corpus
    ):
        """Deterministic faults perturb timing and retries, never results:
        both executors recover the same transient faults identically and
        degrade the same give-up table to its Phase-1 prediction."""
        tables = tiny_corpus.train[:8]
        recovered = tables[0].name  # 2 faults < 3 retry attempts: recovers
        doomed = tables[1].name  # every attempt faults: gives up, degrades
        plan = FaultPlan(
            rules=(
                FaultRule(
                    "fetch_values",
                    "latency",
                    probability=1.0,
                    delay=0.002,
                ),
                FaultRule(
                    "fetch_values",
                    "transient",
                    probability=1.0,
                    max_faults=2,
                    tables=(recovered,),
                ),
                FaultRule(
                    "fetch_values",
                    "transient",
                    probability=1.0,
                    tables=(doomed,),
                ),
            )
        )
        _, seq_report = _detect(
            untrained_model,
            featurizer,
            tables,
            DetectorConfig(pipelined=False),
            options=DetectOptions(fault_plan=plan),
        )
        _, bat_report = _detect(
            untrained_model,
            featurizer,
            tables,
            DetectorConfig(pipelined=True, infer_workers=2),
            options=DetectOptions(fault_plan=plan),
        )
        assert seq_report.giveups == bat_report.giveups >= 1
        degraded_seq = {t.table_name for t in seq_report.tables if t.degraded}
        degraded_bat = {t.table_name for t in bat_report.tables if t.degraded}
        assert degraded_seq == degraded_bat == {doomed}
        _assert_reports_bitwise_equal(seq_report, bat_report)
