"""Unit tests for experiment result containers and their rendering.

These exercise the harness's result dataclasses with synthetic numbers —
no model training — so rendering and lookup logic is covered independently
of the heavyweight benchmark paths.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablation_awl import AblationResult, AblationRow
from repro.experiments.ablation_pretrain import PretrainAblationResult, PretrainRow
from repro.experiments.extra_baselines import BaselineRow, ExtraBaselinesResult
from repro.experiments.fig4_execution_time import Fig4Result, TimingRow
from repro.experiments.fig5_scanned_ratio import Fig5Result
from repro.experiments.fig6_no_type_ratio import EtaRow, Fig6Result
from repro.experiments.fig7_alpha_beta import Fig7Result, SweepPoint as F7Point
from repro.experiments.fig8_l_n import Fig8Result, SweepPoint as F8Point
from repro.experiments.table2_datasets import Table2Result
from repro.experiments.table3_f1 import ApproachResult, Table3Result
from repro.experiments.table4_metadata_only import PrivacyResult, Table4Result
from repro.metrics import RunTiming


class TestTable2Result:
    def test_render_contains_rows(self):
        result = Table2Result(rows=[["wikitable", 10, 50, 5, "0.00%"]])
        assert "wikitable" in result.render()


class TestTable3Result:
    def make(self):
        return Table3Result(
            [
                ApproachResult("wikitable", "taste", 0.9, 0.8, 0.85, 0.4),
                ApproachResult("gittables", "turl", 0.95, 0.9, 0.92, 1.0),
            ]
        )

    def test_get(self):
        assert self.make().get("wikitable", "taste").f1 == 0.85

    def test_get_missing_raises(self):
        with pytest.raises(KeyError):
            self.make().get("wikitable", "doduo")

    def test_rows_for_filters_corpus(self):
        assert len(self.make().rows_for("wikitable")) == 1

    def test_render_has_both_corpora_blocks(self):
        out = self.make().render()
        assert "wikitable dataset" in out and "gittables dataset" in out


class TestTable4Result:
    def test_get_and_render(self):
        result = Table4Result(
            [PrivacyResult("wikitable", "taste", 0.9, 0.9, 0.9)]
        )
        assert result.get("wikitable", "taste").f1 == 0.9
        assert "TASTE w/o P2" in result.render()
        with pytest.raises(KeyError):
            result.get("gittables", "taste")


class TestFig4Result:
    def test_get_and_render(self):
        result = Fig4Result(
            [TimingRow("wikitable", "taste", RunTiming(1.0, 0.1, 3), 0.5)]
        )
        assert result.get("wikitable", "taste").timing.mean_seconds == 1.0
        assert "TASTE" in result.render()
        with pytest.raises(KeyError):
            result.get("wikitable", "doduo")


class TestFig5Result:
    def test_get_ratio(self):
        result = Fig5Result(
            [ApproachResult("wikitable", "taste", 0.9, 0.8, 0.85, 0.37)]
        )
        assert result.get("wikitable", "taste") == 0.37
        assert "37.0%" in result.render()


class TestFig6Result:
    def test_render_sorted_rows(self):
        result = Fig6Result(
            [EtaRow(50, 0.05, 1.0, 0.4, 0.9), EtaRow(10, 0.7, 0.3, 0.1, 0.88)]
        )
        out = result.render()
        assert "5.0%" in out and "70.0%" in out


class TestFig7Result:
    def test_render_two_blocks(self):
        point = F7Point(0.1, 0.9, 0.9, 0.6)
        out = Fig7Result([point], [point]).render()
        assert "varying alpha" in out and "varying beta" in out


class TestFig8Result:
    def test_render_two_blocks(self):
        point = F8Point(20, 10, 0.5, 0.9)
        out = Fig8Result([point], [point]).render()
        assert "varying l" in out and "varying n" in out


class TestAblationResults:
    def test_awl_get_and_render(self):
        result = AblationResult(
            [AblationRow("automatic weighted", 0.9, 0.8, 0.4)]
        )
        assert result.get("automatic weighted").f1_full == 0.9
        assert "automatic weighted" in result.render()
        with pytest.raises(KeyError):
            result.get("fixed sum")

    def test_pretrain_get_and_render(self):
        result = PretrainAblationResult(
            [PretrainRow("random init", 0.9, 0.4, 0.01)]
        )
        assert result.get("random init").f1 == 0.9
        assert "random init" in result.render()
        with pytest.raises(KeyError):
            result.get("MLM pre-trained")

    def test_extra_baselines_get_and_render(self):
        result = ExtraBaselinesResult(
            [BaselineRow("regex", 0.95, 0.3, 0.45, True)]
        )
        assert result.get("regex").precision == 0.95
        assert "regex" in result.render()
        with pytest.raises(KeyError):
            result.get("taste")
