"""Tests for the observability substrate (repro.obs) and its wiring
through the two-phase pipeline: span nesting, contextvar propagation
across the executor's thread pools, the metrics registry under
concurrency, and the JSONL/timeline exporters."""

from __future__ import annotations

import threading

import pytest

from repro.core import TasteDetector, ThresholdPolicy
from repro.db import CloudDatabaseServer, CostModel
from repro.obs import (
    NULL_METRICS,
    NULL_SPAN,
    MetricsRegistry,
    Tracer,
    current_span,
    read_spans_jsonl,
    render_timeline,
    write_spans_jsonl,
)


# ----------------------------------------------------------------------
# Tracer / spans
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_records_timing_and_attributes(self):
        tracer = Tracer()
        with tracer.span("work", table="t0") as span:
            span.set(rows=5)
        (finished,) = tracer.spans()
        assert finished is span
        assert finished.end >= finished.start
        assert finished.duration >= 0
        assert finished.attributes == {"table": "t0", "rows": 5}

    def test_nesting_links_parents(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert tracer.root_of(inner) is outer

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_disabled_tracer_returns_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("ignored", table="t")
        assert span is NULL_SPAN
        with span as entered:
            assert entered.set(x=1) is entered
        assert len(tracer) == 0

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (span,) = tracer.spans()
        assert "ValueError" in span.attributes["error"]
        assert span.end is not None

    def test_find_and_reset(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.find("a")] == ["a"]
        tracer.reset()
        assert len(tracer) == 0

    def test_thread_name_captured(self):
        tracer = Tracer()
        done = threading.Event()

        def work():
            with tracer.span("threaded"):
                pass
            done.set()

        threading.Thread(target=work, name="my-worker").start()
        assert done.wait(5)
        assert tracer.spans()[0].thread == "my-worker"


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_get_or_create_and_labels(self):
        registry = MetricsRegistry()
        registry.counter("hits", cache="a").inc()
        registry.counter("hits", cache="a").inc(2)
        registry.counter("hits", cache="b").inc()
        snapshot = registry.snapshot()
        assert snapshot["hits{cache=a}"]["value"] == 3
        assert snapshot["hits{cache=b}"]["value"] == 1

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_tracks_peak(self):
        gauge = MetricsRegistry().gauge("in_flight")
        gauge.inc()
        gauge.inc()
        gauge.dec()
        assert gauge.value == 1
        assert gauge.peak == 2

    def test_histogram_stats_and_buckets(self):
        hist = MetricsRegistry().histogram("lat", buckets=(0.01, 0.1))
        for v in (0.005, 0.05, 0.5):
            hist.observe(v)
        snap = hist.snapshot()
        assert snap["count"] == 3
        assert snap["min"] == 0.005 and snap["max"] == 0.5
        assert snap["mean"] == pytest.approx(0.185, abs=1e-9)
        assert snap["buckets"] == {"0.01": 1, "0.1": 1, "+Inf": 1}

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_null_registry_records_nothing(self):
        NULL_METRICS.counter("c").inc()
        NULL_METRICS.gauge("g").set(5)
        NULL_METRICS.histogram("h").observe(1.0)
        assert NULL_METRICS.snapshot() == {}

    def test_concurrent_labeled_increments(self):
        """N threads hammering labeled counters: no lost updates."""
        registry = MetricsRegistry()
        threads_n, per_thread = 8, 500

        def work(index: int) -> None:
            for _ in range(per_thread):
                registry.counter("ops", worker=index % 2).inc()
                registry.histogram("obs", worker=index % 2).observe(0.001)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = sum(
            registry.counter("ops", worker=w).value for w in (0, 1)
        )
        assert total == threads_n * per_thread
        counts = sum(registry.histogram("obs", worker=w).count for w in (0, 1))
        assert counts == threads_n * per_thread


# ----------------------------------------------------------------------
# Export: JSONL + timeline
# ----------------------------------------------------------------------
class TestExport:
    def _traced(self):
        tracer = Tracer()
        with tracer.span("detect"):
            with tracer.span("stage.p1.prep", table="t0", stage="p1.prep", kind="prep"):
                pass
            with tracer.span("stage.p1.infer", table="t0", stage="p1.infer", kind="infer"):
                pass
        return tracer

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = self._traced()
        path = write_spans_jsonl(tracer.spans(), tmp_path / "spans.jsonl")
        records = read_spans_jsonl(path)
        assert len(records) == 3
        by_name = {r["name"]: r for r in records}
        assert by_name["stage.p1.prep"]["parent_id"] == by_name["detect"]["span_id"]
        assert by_name["stage.p1.prep"]["attributes"]["table"] == "t0"

    def test_timeline_renders_stage_spans(self, tmp_path):
        tracer = self._traced()
        art = render_timeline(tracer.spans())
        assert "t0" in art and "p1.prep" in art and "p1.infer" in art
        assert "=" in art and "#" in art
        # Renders identically from the JSONL artifact.
        path = write_spans_jsonl(tracer.spans(), tmp_path / "spans.jsonl")
        assert render_timeline(read_spans_jsonl(path)) == art

    def test_timeline_empty(self):
        assert "no stage spans" in render_timeline([])


# ----------------------------------------------------------------------
# Trace propagation through the pipelined detector (Definition 5.1)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_run(request):
    """One pipelined detection over >= 4 tables with real (tiny) sleeps."""
    trained_model = request.getfixturevalue("trained_model")
    featurizer = request.getfixturevalue("featurizer")
    tiny_corpus = request.getfixturevalue("tiny_corpus")
    cost_model = CostModel(
        connect_latency=2e-3,
        round_trip_latency=2e-3,
        metadata_per_table=1e-3,
        scan_fixed=6e-3,
        scan_per_row=1e-4,
        time_scale=1.0,
    )
    registry = MetricsRegistry()
    server = CloudDatabaseServer.from_tables(
        tiny_corpus.tables[:6], cost_model, metrics=registry
    )
    detector = TasteDetector(
        trained_model,
        featurizer,
        ThresholdPolicy(0.0, 1.0),  # force Phase 2 for every column
        pipelined=True,
        tracer=Tracer(),
        metrics=registry,
    )
    report = detector.detect(server)
    assert len(report.tables) >= 4, "fixture corpus too small for overlap test"
    return detector, server, registry, report


class TestTracePropagation:
    def test_spans_from_both_pools_share_root(self, traced_run):
        detector, _, _, _ = traced_run
        tracer = detector.tracer
        (root,) = tracer.find("detect")
        stage_spans = [s for s in tracer.spans() if "stage" in s.attributes]
        assert stage_spans, "no stage spans recorded"
        threads = {span.thread for span in stage_spans}
        assert any(t.startswith("taste-prep") for t in threads)
        assert any(t.startswith("taste-infer") for t in threads)
        for span in stage_spans:
            assert tracer.root_of(span) is root

    def test_stages_never_overlap_within_a_table(self, traced_run):
        detector, _, _, _ = traced_run
        by_table: dict[str, list] = {}
        for span in detector.tracer.spans():
            if "stage" in span.attributes:
                by_table.setdefault(span.attributes["table"], []).append(span)
        assert len(by_table) >= 4
        for spans in by_table.values():
            spans.sort(key=lambda s: s.start)
            for earlier, later in zip(spans, spans[1:]):
                assert later.start >= earlier.end - 1e-6

    def test_stages_overlap_across_tables(self, traced_run):
        """The pipelining invariant: some prep stage of one table runs
        while an infer stage of another is in flight (paper Fig. 4)."""
        detector, _, _, _ = traced_run
        stage_spans = [
            s for s in detector.tracer.spans() if "stage" in s.attributes
        ]
        preps = [s for s in stage_spans if s.attributes["kind"] == "prep"]
        infers = [s for s in stage_spans if s.attributes["kind"] == "infer"]
        overlapping = any(
            p.attributes["table"] != i.attributes["table"]
            and p.start < i.end
            and i.start < p.end
            for p in preps
            for i in infers
        )
        assert overlapping

    def test_metrics_consistent_with_ledger(self, traced_run):
        _, server, registry, report = traced_run
        snapshot = registry.snapshot()
        round_trips = sum(
            snapshot[f"db.round_trips{{op={op}}}"]["value"]
            for op in ("connect", "metadata", "scan")
            if f"db.round_trips{{op={op}}}" in snapshot
        )
        assert round_trips == server.ledger.round_trips
        assert snapshot["db.rows_read"]["value"] == server.ledger.rows_read
        assert snapshot["cache.hits"]["value"] == report.cache_hits > 0
        assert snapshot["pipeline.in_flight{pool=prep}"]["peak"] >= 1
        assert snapshot["pipeline.in_flight{pool=infer}"]["peak"] >= 1
        assert snapshot["pipeline.queue_wait_seconds{pool=prep}"]["count"] > 0
        assert snapshot["pipeline.wait_timeouts"]["value"] == 0
        stage_hist = snapshot["pipeline.stage_seconds{stage=p1.prep}"]
        assert stage_hist["count"] == len(report.tables)

    def test_trace_out_artifact_renders_timeline(
        self, trained_model, featurizer, tiny_corpus, tmp_path
    ):
        server = CloudDatabaseServer.from_tables(
            tiny_corpus.tables[:4], CostModel(time_scale=0.0)
        )
        detector = TasteDetector(
            trained_model, featurizer, ThresholdPolicy(0.1, 0.9),
            pipelined=True, tracer=Tracer(), metrics=MetricsRegistry(),
        )
        path = tmp_path / "run.jsonl"
        report = detector.detect(server, trace_out=path)
        records = read_spans_jsonl(path)
        assert len(records) == len(detector.tracer.spans())
        art = render_timeline(records)
        for table in report.tables:
            assert table.table_name in art

    def test_stage_seconds_populated_from_spans(self, traced_run):
        detector, _, _, report = traced_run
        by_table = {
            s.attributes["table"]: s
            for s in detector.tracer.spans()
            if s.attributes.get("stage") == "p1.prep"
        }
        for table in report.tables:
            assert table.prepare1_seconds == pytest.approx(
                by_table[table.table_name].duration
            )
            assert table.prepare1_seconds > 0

    def test_disabled_tracer_still_times_stages(
        self, trained_model, featurizer, tiny_corpus
    ):
        server = CloudDatabaseServer.from_tables(
            tiny_corpus.test, CostModel(time_scale=0.0)
        )
        detector = TasteDetector(
            trained_model, featurizer, ThresholdPolicy(0.1, 0.9),
            pipelined=False, tracer=Tracer(enabled=False), metrics=NULL_METRICS,
        )
        report = detector.detect(server)
        assert len(detector.tracer.spans()) == 0
        assert all(t.infer1_seconds > 0 for t in report.tables)
