"""Property-based gradient checking over random expression trees.

Builds small random computation graphs from the Tensor op vocabulary and
verifies the backward pass against central-difference numeric gradients —
the strongest correctness guarantee the autograd engine gets.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.nn import Tensor

_UNARY_OPS = ("tanh", "sigmoid", "relu", "exp")
_BINARY_OPS = ("add", "sub", "mul")


def _apply(op: str, x, w):
    if op == "add":
        return x + w
    if op == "sub":
        return x - w
    if op == "mul":
        return x * w
    return getattr(x, op)()


@st.composite
def expressions(draw):
    """A random chain of 1-4 ops plus the constants it needs."""
    depth = draw(st.integers(1, 4))
    ops = [
        draw(st.sampled_from(_UNARY_OPS + _BINARY_OPS))
        for _ in range(depth)
    ]
    seed = draw(st.integers(0, 2**31 - 1))
    return ops, seed


def evaluate(ops: list[str], x_data: np.ndarray, rng: np.random.Generator):
    """Run the chain as Tensors; returns (loss_value, input_tensor)."""
    x = Tensor(x_data.astype(np.float32), requires_grad=True)
    value = x
    constants = iter(
        rng.uniform(0.5, 1.5, size=(len(ops),) + x_data.shape).astype(np.float32)
    )
    for op in ops:
        if op in _BINARY_OPS:
            value = _apply(op, value, Tensor(next(constants)))
        else:
            value = _apply(op, value, None)
    weights = rng.standard_normal(x_data.shape).astype(np.float32)
    loss = (value * Tensor(weights)).sum()
    return loss, x


@given(expressions())
@settings(max_examples=40, deadline=None)
def test_random_expression_gradients_match_numeric(expr):
    ops, seed = expr
    rng = np.random.default_rng(seed)
    x_data = rng.uniform(-1.0, 1.0, size=(2, 3))
    # keep relu inputs away from the kink
    x_data[np.abs(x_data) < 0.05] = 0.1

    loss, x = evaluate(ops, x_data, np.random.default_rng(seed + 1))
    loss.backward()
    analytic = x.grad.copy()

    eps = 1e-3
    index = (0, 0)
    xp, xm = x_data.copy(), x_data.copy()
    xp[index] += eps
    xm[index] -= eps
    lp, _ = evaluate(ops, xp, np.random.default_rng(seed + 1))
    lm, _ = evaluate(ops, xm, np.random.default_rng(seed + 1))
    lp_val, lm_val = float(lp.data), float(lm.data)
    numeric = (lp_val - lm_val) / (2 * eps)
    # Stacked exps can overflow float32 to inf/nan; neither gradient is
    # meaningful there, so discard the example rather than compare noise.
    assume(np.isfinite(numeric) and np.isfinite(analytic[index]))
    # Even finite losses can be so large (e.g. exp(exp(exp(x))) ~ 4e6) that
    # float32 quantization at their magnitude dwarfs the eps-sized step; the
    # central difference is then rounding noise, not a gradient. Keep the
    # example only when the measured difference clears the float32 spacing
    # at the loss's scale by a wide margin.
    scale = max(abs(lp_val), abs(lm_val))
    assume(abs(lp_val - lm_val) > 64 * float(np.spacing(np.float32(scale))))
    assert analytic[index] == pytest.approx(numeric, rel=5e-2, abs=5e-3)
