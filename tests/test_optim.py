"""Tests for optimizers, gradient clipping and schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Parameter


def quadratic_param():
    return Parameter(np.array([5.0, -3.0], dtype=np.float32))


def quadratic_step(param):
    loss = ((nn.Tensor(param.data) * 0.0 + param) ** 2).sum()
    param.zero_grad()
    loss.backward()
    return float(loss.data)


class TestSGD:
    def test_converges_on_quadratic(self):
        param = quadratic_param()
        opt = nn.SGD([param], lr=0.1)
        for _ in range(100):
            quadratic_step(param)
            opt.step()
        assert np.abs(param.data).max() < 1e-2

    def test_momentum_accelerates(self):
        plain, heavy = quadratic_param(), quadratic_param()
        opt_plain = nn.SGD([plain], lr=0.01)
        opt_heavy = nn.SGD([heavy], lr=0.01, momentum=0.9)
        for _ in range(30):
            quadratic_step(plain)
            opt_plain.step()
            quadratic_step(heavy)
            opt_heavy.step()
        assert np.abs(heavy.data).sum() < np.abs(plain.data).sum()

    def test_skips_params_without_grad(self):
        param = quadratic_param()
        before = param.data.copy()
        nn.SGD([param], lr=0.1).step()
        assert np.array_equal(param.data, before)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            nn.SGD([quadratic_param()], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = quadratic_param()
        opt = nn.Adam([param], lr=0.3)
        for _ in range(150):
            quadratic_step(param)
            opt.step()
        assert np.abs(param.data).max() < 1e-2

    def test_weight_decay_shrinks_weights(self):
        param = Parameter(np.array([1.0], dtype=np.float32))
        opt = nn.Adam([param], lr=0.01, weight_decay=1.0)
        # zero task gradient: only decay acts
        param.grad = np.zeros(1, dtype=np.float32)
        for _ in range(10):
            opt.step()
        assert param.data[0] < 1.0

    def test_zero_grad_helper(self):
        param = quadratic_param()
        opt = nn.Adam([param])
        quadratic_step(param)
        opt.zero_grad()
        assert param.grad is None


class TestClipGradNorm:
    def test_scales_down_large_gradients(self):
        param = Parameter(np.zeros(4, dtype=np.float32))
        param.grad = np.full(4, 10.0, dtype=np.float32)
        norm = nn.clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, rel=1e-5)

    def test_leaves_small_gradients(self):
        param = Parameter(np.zeros(2, dtype=np.float32))
        param.grad = np.array([0.1, 0.1], dtype=np.float32)
        nn.clip_grad_norm([param], max_norm=1.0)
        assert np.allclose(param.grad, 0.1)

    def test_handles_missing_grads(self):
        assert nn.clip_grad_norm([Parameter(np.zeros(2, dtype=np.float32))], 1.0) == 0.0


class TestWarmupLinearSchedule:
    def test_warmup_then_decay(self):
        param = quadratic_param()
        opt = nn.Adam([param], lr=1.0)
        schedule = nn.WarmupLinearSchedule(opt, warmup_steps=2, total_steps=10)
        lrs = [schedule.step() for _ in range(10)]
        assert lrs[0] == pytest.approx(0.5)
        assert lrs[1] == pytest.approx(1.0)
        assert lrs[-1] == pytest.approx(0.0)
        assert all(a >= b for a, b in zip(lrs[1:], lrs[2:]))

    def test_invalid_total_steps(self):
        with pytest.raises(ValueError):
            nn.WarmupLinearSchedule(nn.Adam([quadratic_param()]), 0, 0)
