"""Tests for the Module / Parameter system."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


class TinyNet(nn.Module):
    def __init__(self, rng):
        super().__init__()
        self.linear = nn.Linear(4, 3, rng)
        self.inner = nn.Sequential(nn.Linear(3, 3, rng), nn.ReLU())

    def forward(self, x):
        return self.inner(self.linear(x))


@pytest.fixture()
def net(rng):
    return TinyNet(rng)


class TestParameterDiscovery:
    def test_named_parameters_are_nested(self, net):
        names = {name for name, _ in net.named_parameters()}
        assert "linear.weight" in names
        assert "linear.bias" in names
        assert "inner.layer_0.weight" in names

    def test_num_parameters(self, net):
        assert net.num_parameters() == 4 * 3 + 3 + 3 * 3 + 3

    def test_modules_iterates_tree(self, net):
        kinds = {type(m).__name__ for m in net.modules()}
        assert {"TinyNet", "Linear", "Sequential", "ReLU"} <= kinds


class TestModes:
    def test_train_eval_propagate(self, net):
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())


class TestGradients:
    def test_zero_grad_clears(self, net):
        x = nn.Tensor(np.ones((2, 4)))
        net(x).sum().backward()
        assert net.linear.weight.grad is not None
        net.zero_grad()
        assert net.linear.weight.grad is None


class TestStateDict:
    def test_roundtrip(self, net, rng):
        state = net.state_dict()
        other = TinyNet(np.random.default_rng(99))
        other.load_state_dict(state)
        for (_, a), (_, b) in zip(net.named_parameters(), other.named_parameters()):
            assert np.array_equal(a.data, b.data)

    def test_state_dict_copies(self, net):
        state = net.state_dict()
        state["linear.weight"][:] = 99.0
        assert not np.allclose(net.linear.weight.data, 99.0)

    def test_strict_missing_raises(self, net):
        state = net.state_dict()
        state.pop("linear.weight")
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_unexpected_key_raises(self, net):
        state = net.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_non_strict_allows_partial(self, net):
        state = net.state_dict()
        state.pop("linear.weight")
        net.load_state_dict(state, strict=False)

    def test_shape_mismatch_raises(self, net):
        state = net.state_dict()
        state["linear.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.load_state_dict(state)


class TestModuleList:
    def test_indexing_and_iteration(self, rng):
        modules = nn.ModuleList([nn.Linear(2, 2, rng) for _ in range(3)])
        assert len(modules) == 3
        assert modules[1] is list(modules)[1]

    def test_parameters_registered(self, rng):
        modules = nn.ModuleList([nn.Linear(2, 2, rng) for _ in range(2)])
        assert len(modules.parameters()) == 4
