"""Tests for dataset splitting, retained-type tuning and corpora."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import (
    make_gittables_corpus,
    make_wikitable_corpus,
    no_type_ratio,
    retain_types,
    split_indices,
)


class TestSplitIndices:
    @given(st.integers(10, 300))
    @settings(max_examples=25, deadline=None)
    def test_partition_is_disjoint_and_complete(self, count):
        splits = split_indices(count)
        combined = splits["train"] + splits["validation"] + splits["test"]
        assert sorted(combined) == list(range(count))

    def test_ratios_respected(self):
        splits = split_indices(100, ratios=(0.8, 0.1, 0.1))
        assert len(splits["train"]) == 80
        assert len(splits["validation"]) == 10
        assert len(splits["test"]) == 10

    def test_deterministic(self):
        assert split_indices(50, seed=3) == split_indices(50, seed=3)

    def test_seed_changes_order(self):
        assert split_indices(50, seed=1) != split_indices(50, seed=2)

    def test_bad_ratios_raise(self):
        with pytest.raises(ValueError):
            split_indices(10, ratios=(0.5, 0.1, 0.1))


class TestRetainTypes:
    def test_labels_filtered_to_retained(self, tiny_corpus, registry):
        tables, reduced = retain_types(tiny_corpus.tables, registry, k=10, seed=0)
        retained = {t.name for t in reduced}
        for table in tables:
            for column in table.columns:
                assert set(column.types) <= retained

    def test_eta_grows_as_k_shrinks(self, tiny_corpus, registry):
        etas = []
        for k in (40, 20, 5):
            tables, _ = retain_types(tiny_corpus.tables, registry, k=k, seed=0)
            etas.append(no_type_ratio(tables))
        assert etas[0] < etas[1] < etas[2]

    def test_content_untouched(self, tiny_corpus, registry):
        tables, _ = retain_types(tiny_corpus.tables, registry, k=10, seed=0)
        assert tables[0].columns[0].values == tiny_corpus.tables[0].columns[0].values

    def test_seed_controls_selection(self, tiny_corpus, registry):
        _, reduced_a = retain_types(tiny_corpus.tables, registry, k=10, seed=0)
        _, reduced_b = retain_types(tiny_corpus.tables, registry, k=10, seed=1)
        assert {t.name for t in reduced_a} != {t.name for t in reduced_b}

    def test_invalid_k(self, tiny_corpus, registry):
        with pytest.raises(ValueError):
            retain_types(tiny_corpus.tables, registry, k=0)
        with pytest.raises(ValueError):
            retain_types(tiny_corpus.tables, registry, k=10_000)


class TestNoTypeRatio:
    def test_empty_tables(self):
        assert no_type_ratio([]) == 0.0

    def test_fully_labeled_corpus(self, tiny_corpus):
        assert no_type_ratio(tiny_corpus.tables) == 0.0


class TestCorpora:
    def test_wikitable_fully_labeled(self):
        corpus = make_wikitable_corpus(20)
        assert corpus.stats().no_type_ratio == 0.0

    def test_gittables_background_near_target(self):
        corpus = make_gittables_corpus(60)
        assert 0.2 < corpus.stats().no_type_ratio < 0.45

    def test_splits_partition_tables(self):
        corpus = make_wikitable_corpus(30)
        combined = sum(corpus.splits.values(), [])
        assert sorted(combined) == list(range(30))

    def test_subset_accessors(self):
        corpus = make_wikitable_corpus(30)
        assert len(corpus.train) + len(corpus.validation) + len(corpus.test) == 30

    def test_unknown_split_raises(self):
        corpus = make_wikitable_corpus(10)
        with pytest.raises(KeyError):
            corpus.subset("bogus")

    def test_deterministic_given_seed(self):
        a = make_wikitable_corpus(10, seed=4)
        b = make_wikitable_corpus(10, seed=4)
        assert [t.name for t in a.tables] == [t.name for t in b.tables]
        assert a.tables[3].columns[0].values == b.tables[3].columns[0].values

    def test_stats_per_split(self):
        corpus = make_gittables_corpus(40)
        stats = corpus.stats("test")
        assert stats.num_tables == len(corpus.test)
        assert stats.num_columns == sum(t.num_columns for t in corpus.test)
