"""End-to-end tests for the TASTE detector and its phases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TasteDetector, ThresholdPolicy
from repro.db import CloudDatabaseServer, CostModel

FAST = CostModel(time_scale=0.0)


@pytest.fixture()
def server(tiny_corpus):
    return CloudDatabaseServer.from_tables(tiny_corpus.test, FAST)


@pytest.fixture()
def detector(trained_model, featurizer):
    return TasteDetector(
        trained_model, featurizer, ThresholdPolicy(0.1, 0.9), pipelined=False
    )


class TestDetection:
    def test_every_column_predicted(self, detector, server, tiny_corpus):
        report = detector.detect(server)
        expected = sum(t.num_columns for t in tiny_corpus.test)
        assert report.num_columns == expected

    def test_detect_specific_tables(self, detector, server, tiny_corpus):
        name = tiny_corpus.test[0].name
        report = detector.detect(server, [name])
        assert {p.table_name for p in report.predictions} == {name}

    def test_phase_assignment_consistent_with_scanning(self, detector, server):
        report = detector.detect(server)
        scanned_names = {
            (table, column) for table, column in server.ledger.scanned_columns
        }
        for prediction in report.predictions:
            key = (prediction.table_name, prediction.column_name)
            if prediction.phase == 2:
                assert key in scanned_names
            else:
                assert key not in scanned_names

    def test_report_cost_snapshot(self, detector, server):
        report = detector.detect(server)
        assert report.cost["metadata_requests"] >= len(report.tables)
        assert report.wall_seconds > 0

    def test_scanned_ratio_between_0_and_1(self, detector, server):
        report = detector.detect(server)
        assert 0.0 <= report.scanned_ratio() <= 1.0


class TestPrivacyMode:
    def test_no_scans_when_phase2_disabled(self, trained_model, featurizer, server):
        detector = TasteDetector(
            trained_model, featurizer, ThresholdPolicy.privacy_mode(), pipelined=False
        )
        report = detector.detect(server)
        assert server.ledger.num_scanned_columns() == 0
        assert report.scanned_ratio() == 0.0
        assert all(p.phase == 1 for p in report.predictions)


class TestUncertainColumns:
    def test_wide_band_scans_everything(self, trained_model, featurizer, server):
        """alpha=0, beta=1 makes every probability uncertain -> scan all."""
        detector = TasteDetector(
            trained_model, featurizer, ThresholdPolicy(0.0, 1.0), pipelined=False
        )
        report = detector.detect(server)
        assert report.scanned_ratio() == 1.0
        assert all(p.phase == 2 for p in report.predictions)

    def test_uncertain_types_recorded(self, trained_model, featurizer, server):
        detector = TasteDetector(
            trained_model, featurizer, ThresholdPolicy(0.0, 1.0), pipelined=False
        )
        report = detector.detect(server)
        assert all(p.uncertain_types for p in report.predictions)


class TestCaching:
    def test_cache_populated_then_hit(self, trained_model, featurizer, server):
        detector = TasteDetector(
            trained_model, featurizer, ThresholdPolicy(0.0, 1.0),
            caching=True, pipelined=False,
        )
        report = detector.detect(server)
        assert report.cache_hits > 0
        assert report.cache_misses == 0

    def test_caching_disabled_counts_no_misses(self, trained_model, featurizer, server):
        """Disabled-cache lookups are tracked separately, not as misses:
        the ablation never attempted them."""
        detector = TasteDetector(
            trained_model, featurizer, ThresholdPolicy(0.0, 1.0),
            caching=False, pipelined=False,
        )
        report = detector.detect(server)
        assert report.cache_hits == 0
        assert report.cache_misses == 0
        assert report.cache_disabled_lookups > 0

    def test_cache_and_no_cache_identical_predictions(
        self, trained_model, featurizer, tiny_corpus
    ):
        policy = ThresholdPolicy(0.0, 1.0)
        reports = []
        for caching in (True, False):
            server = CloudDatabaseServer.from_tables(tiny_corpus.test, FAST)
            detector = TasteDetector(
                trained_model, featurizer, policy, caching=caching, pipelined=False
            )
            reports.append(detector.detect(server))
        for a, b in zip(reports[0].predictions, reports[1].predictions):
            assert a.admitted_types == b.admitted_types
            assert np.allclose(a.probabilities, b.probabilities, atol=1e-5)


class TestPipelinedEquivalence:
    def test_pipelined_and_sequential_same_predictions(
        self, trained_model, featurizer, tiny_corpus
    ):
        policy = ThresholdPolicy(0.1, 0.9)
        reports = []
        for pipelined in (False, True):
            server = CloudDatabaseServer.from_tables(tiny_corpus.test, FAST)
            detector = TasteDetector(
                trained_model, featurizer, policy, pipelined=pipelined
            )
            reports.append(detector.detect(server))
        by_key = lambda r: {
            (p.table_name, p.column_name): (tuple(p.admitted_types), p.phase)
            for p in r.predictions
        }
        assert by_key(reports[0]) == by_key(reports[1])


class TestScanMethods:
    def test_sampling_mode_charged(self, trained_model, featurizer, tiny_corpus):
        policy = ThresholdPolicy(0.0, 1.0)  # force scans
        server_first = CloudDatabaseServer.from_tables(tiny_corpus.test, FAST)
        server_sample = CloudDatabaseServer.from_tables(tiny_corpus.test, FAST)
        TasteDetector(
            trained_model, featurizer, policy, pipelined=False, scan_method="first"
        ).detect(server_first)
        TasteDetector(
            trained_model, featurizer, policy, pipelined=False, scan_method="sample"
        ).detect(server_sample)
        assert (
            server_sample.ledger.simulated_seconds
            > server_first.ledger.simulated_seconds
        )

    def test_invalid_scan_method(self, trained_model, featurizer):
        with pytest.raises(ValueError):
            TasteDetector(trained_model, featurizer, scan_method="bogus")


class TestWideTables:
    def test_column_splitting_covers_all_columns(
        self, trained_model, tokenizer, tiny_corpus
    ):
        from repro.features import FeatureConfig, Featurizer

        narrow = Featurizer(
            tokenizer, tiny_corpus.registry, FeatureConfig(column_split_threshold=2)
        )
        server = CloudDatabaseServer.from_tables(tiny_corpus.test[:3], FAST)
        detector = TasteDetector(
            trained_model, narrow, ThresholdPolicy(0.1, 0.9), pipelined=False
        )
        report = detector.detect(server)
        expected = sum(t.num_columns for t in tiny_corpus.test[:3])
        assert report.num_columns == expected
