"""Each lint rule fires on a synthetic bad example and stays quiet on the
fixed version; suppression, registry and emitters are covered too."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    lint_paths,
    read_findings_jsonl,
    registered_rules,
    render_findings,
    write_findings_jsonl,
)
from repro.analysis.__main__ import main


def _lint_source(tmp_path: Path, source: str) -> list:
    target = tmp_path / "example.py"
    target.write_text(source)
    return lint_paths([target])


def _rules_hit(findings: list) -> set[str]:
    return {finding.rule for finding in findings}


# ----------------------------------------------------------------------
# RPR1xx — autograd safety
# ----------------------------------------------------------------------
def test_rpr101_float_on_data(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def track(loss, total):\n"
        "    total += float(loss.data)\n"
        "    return total\n",
    )
    assert _rules_hit(findings) == {"RPR101"}
    assert findings[0].line == 2


def test_rpr101_clean_item(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def track(loss, total):\n"
        "    total += loss.item()\n"
        "    return total\n",
    )
    assert findings == []


def test_rpr102_data_mutation(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def clobber(t, u):\n"
        "    t.data[0] = 1.0\n"
        "    u.data = t.data\n",
    )
    assert [f.rule for f in findings] == ["RPR102", "RPR102"]


def test_rpr102_excluded_inside_nn(tmp_path):
    engine_dir = tmp_path / "repro" / "nn"
    engine_dir.mkdir(parents=True)
    target = engine_dir / "optim.py"
    target.write_text("def step(p, g):\n    p.data = p.data - g\n")
    assert lint_paths([target]) == []


def test_rpr103_model_call_without_no_grad(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def detect(self, batch):\n"
        "    logits = self.model(batch)\n"
        "    return logits\n",
    )
    assert _rules_hit(findings) == {"RPR103"}


def test_rpr103_clean_under_no_grad(tmp_path):
    findings = _lint_source(
        tmp_path,
        "import repro.nn as nn\n"
        "def detect(self, batch):\n"
        "    self.model.eval()\n"
        "    with nn.no_grad():\n"
        "        logits = self.model(batch)\n"
        "    return logits\n",
    )
    assert findings == []


def test_rpr103_ignores_training_functions(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def train_model(self, batch):\n"
        "    return self.model(batch)\n",
    )
    assert findings == []


def test_rpr104_data_subscript(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def read(logits):\n"
        "    return logits.data[0]\n",
    )
    assert _rules_hit(findings) == {"RPR104"}


# ----------------------------------------------------------------------
# RPR2xx — concurrency hygiene
# ----------------------------------------------------------------------
_LOCKSET_BAD = """
import threading

class Stats:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self.other = 0

    def locked_bump(self):
        with self._lock:
            self.count += 1

    def unlocked_bump(self):
        self.count += 1

    def unguarded_attr_is_fine(self):
        self.other += 1
"""


def test_rpr201_unlocked_guarded_write(tmp_path):
    findings = _lint_source(tmp_path, _LOCKSET_BAD)
    assert [f.rule for f in findings] == ["RPR201"]
    assert findings[0].context["attr"] == "count"
    # 'other' is never written under the lock, so it is not in the lockset.


def test_rpr201_dataclass_field_lock(tmp_path):
    findings = _lint_source(
        tmp_path,
        "import threading\n"
        "from dataclasses import dataclass, field\n"
        "@dataclass\n"
        "class Cache:\n"
        "    hits: int = 0\n"
        "    _lock: threading.Lock = field(default_factory=threading.Lock)\n"
        "    def get(self):\n"
        "        with self._lock:\n"
        "            self.hits += 1\n"
        "    def sneaky_reset(self):\n"
        "        self.hits = 0\n",
    )
    assert [f.rule for f in findings] == ["RPR201"]


def test_rpr201_container_mutation(tmp_path):
    findings = _lint_source(
        tmp_path,
        "import threading\n"
        "class Pool:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._idle = []\n"
        "    def release(self, conn):\n"
        "        with self._lock:\n"
        "            self._idle.append(conn)\n"
        "    def drop_all(self):\n"
        "        self._idle.clear()\n",
    )
    assert [f.rule for f in findings] == ["RPR201"]


def test_rpr202_bare_acquire(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def critical(lock):\n"
        "    lock.acquire()\n"
        "    lock.release()\n",
    )
    assert _rules_hit(findings) == {"RPR202"}


# ----------------------------------------------------------------------
# RPR3xx — observability hygiene
# ----------------------------------------------------------------------
def test_rpr301_span_discarded(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def run(tracer):\n"
        "    tracer.span('work')\n"
        "    do_work()\n",
    )
    assert _rules_hit(findings) == {"RPR301"}


def test_rpr301_with_span_is_clean(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def run(tracer):\n"
        "    with tracer.span('work'):\n"
        "        do_work()\n",
    )
    assert findings == []


def test_rpr302_metric_in_loop(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def run(metrics, items):\n"
        "    for item in items:\n"
        "        metrics.counter('hits').inc()\n",
    )
    assert _rules_hit(findings) == {"RPR302"}


def test_rpr302_hoisted_handle_is_clean(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def run(metrics, items):\n"
        "    hits = metrics.counter('hits')\n"
        "    for item in items:\n"
        "        hits.inc()\n",
    )
    assert findings == []


# ----------------------------------------------------------------------
# Engine machinery
# ----------------------------------------------------------------------
def test_noqa_suppresses_specific_rule(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def track(loss, total):\n"
        "    total += float(loss.data)  # noqa: RPR101\n"
        "    return total\n",
    )
    assert findings == []


def test_blanket_noqa_suppresses_everything(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def track(loss, total):\n"
        "    total += float(loss.data)  # noqa\n",
    )
    assert findings == []


def test_noqa_does_not_suppress_other_rules(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def track(loss, total):\n"
        "    total += float(loss.data)  # noqa: RPR999\n",
    )
    assert _rules_hit(findings) == {"RPR101"}


def test_syntax_error_reported_not_fatal(tmp_path):
    findings = _lint_source(tmp_path, "def broken(:\n")
    assert [f.rule for f in findings] == ["RPR000"]


def test_registry_has_all_documented_rules():
    ids = {rule.id for rule in registered_rules()}
    assert {
        "RPR101", "RPR102", "RPR103", "RPR104",
        "RPR201", "RPR202", "RPR301", "RPR302",
        "RPR501", "RPR502",
    } <= ids


def test_findings_jsonl_round_trip(tmp_path):
    finding = Finding(
        tool="lint", rule="RPR101", message="msg", path="a.py", line=3, col=7,
        context={"attr": "count"},
    )
    path = write_findings_jsonl([finding], tmp_path / "out" / "findings.jsonl")
    assert read_findings_jsonl(path) == [finding]
    record = json.loads(path.read_text().strip())
    assert record["rule"] == "RPR101" and record["line"] == 3


def test_render_findings_text():
    finding = Finding(tool="lint", rule="RPR101", message="msg", path="a.py", line=3)
    assert "a.py:3:0: RPR101" in render_findings([finding])
    assert render_findings([]) == "no findings"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_lint_exit_codes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(loss):\n    return float(loss.data)\n")
    good = tmp_path / "good.py"
    good.write_text("def f(loss):\n    return loss.item()\n")

    assert main(["lint", str(bad)]) == 1
    assert "RPR101" in capsys.readouterr().out
    assert main(["lint", str(good)]) == 0


def test_cli_lint_jsonl_artifact(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(loss):\n    return float(loss.data)\n")
    out = tmp_path / "findings.jsonl"
    assert main(["lint", str(bad), "--format", "jsonl", "--out", str(out)]) == 1
    stdout = capsys.readouterr().out
    assert json.loads(stdout.strip())["rule"] == "RPR101"
    assert read_findings_jsonl(out)[0].rule == "RPR101"


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "RPR101" in out and "RPR302" in out


def test_cli_races_self_check(capsys):
    assert main(["races"]) == 0


@pytest.mark.parametrize("command", ["shapes"])
def test_cli_shapes_on_clean_dir(tmp_path, capsys, command):
    clean = tmp_path / "model.py"
    clean.write_text(
        "from repro.nn import EncoderConfig\n"
        "CFG = EncoderConfig(hidden_size=64, num_heads=4)\n"
    )
    assert main([command, str(tmp_path)]) == 0


# ----------------------------------------------------------------------
# RPR4xx — fault handling
# ----------------------------------------------------------------------
def test_rpr401_broad_except_around_db_call(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def fetch(connection, name):\n"
        "    try:\n"
        "        return connection.fetch_metadata(name)\n"
        "    except Exception:\n"
        "        return None\n",
    )
    assert _rules_hit(findings) == {"RPR402"}
    assert "fetch_metadata" in findings[0].message


def test_rpr401_bare_except(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def scan(pool):\n"
        "    try:\n"
        "        with pool.lease() as conn:\n"
        "            return conn.fetch_values('t', ['c'])\n"
        "    except:\n"
        "        return {}\n",
    )
    assert _rules_hit(findings) == {"RPR402"}


def test_rpr401_quiet_on_narrow_except(tmp_path):
    findings = _lint_source(
        tmp_path,
        "from repro.faults import RetryGiveUpError\n"
        "def fetch(connection, name):\n"
        "    try:\n"
        "        return connection.fetch_metadata(name)\n"
        "    except RetryGiveUpError:\n"
        "        return None\n",
    )
    assert findings == []


def test_rpr401_quiet_without_db_call(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def parse(blob):\n"
        "    try:\n"
        "        return int(blob)\n"
        "    except Exception:\n"
        "        return 0\n",
    )
    assert findings == []


def test_rpr403_legacy_detector_kwargs(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def build(model, featurizer):\n"
        "    return TasteDetector(model, featurizer, pipelined=False, metrics=None)\n",
    )
    assert _rules_hit(findings) == {"RPR403"}
    assert "pipelined" in findings[0].message
    assert "RuntimeConfig" in findings[0].message


def test_rpr403_attribute_callee_flagged(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def build(core, model, featurizer):\n"
        "    return core.TasteDetector(model, featurizer, scan_method='sample')\n",
    )
    assert _rules_hit(findings) == {"RPR403"}


def test_rpr403_quiet_on_config_style(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def build(model, featurizer, config, runtime):\n"
        "    return TasteDetector(model, featurizer, config=config, runtime=runtime)\n",
    )
    assert findings == []


def test_rpr403_quiet_on_other_callables(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def build(factory):\n"
        "    return factory(pipelined=False, metrics=None)\n",
    )
    assert findings == []


# ----------------------------------------------------------------------
# RPR5xx — inference throughput
# ----------------------------------------------------------------------
def test_rpr501_single_item_collate_in_loop(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def scan(model, chunks):\n"
        "    for chunk in chunks:\n"
        "        batch = collate([chunk])\n"
        "        model(batch)\n",
    )
    assert _rules_hit(findings) == {"RPR501"}


def test_rpr501_attribute_collate_in_while_loop(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def scan(features, queue, model):\n"
        "    while queue:\n"
        "        batch = features.collate([queue.pop()])\n"
        "        model(batch)\n",
    )
    assert _rules_hit(findings) == {"RPR501"}


def test_rpr501_quiet_on_multi_item_collate(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def scan(model, groups):\n"
        "    for group in groups:\n"
        "        batch = collate([encoded for encoded in group])\n"
        "        model(batch)\n",
    )
    assert findings == []


def test_rpr501_quiet_outside_loop(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def scan_one(model, chunk):\n"
        "    batch = collate([chunk])\n"
        "    return model(batch)\n",
    )
    assert findings == []


def test_rpr501_quiet_on_other_single_item_calls(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def scan(model, chunks):\n"
        "    for chunk in chunks:\n"
        "        model(stack([chunk]))\n",
    )
    assert findings == []


def test_rpr501_noqa(tmp_path):
    findings = _lint_source(
        tmp_path,
        "def scan(model, chunks):\n"
        "    for chunk in chunks:\n"
        "        batch = collate([chunk])  # noqa: RPR501\n"
        "        model(batch)\n",
    )
    assert findings == []


# ----------------------------------------------------------------------
# RPR502 — fresh allocations in no-grad loops (repro/nn only)
# ----------------------------------------------------------------------
def _lint_nn_source(tmp_path: Path, source: str, name: str = "hot.py") -> list:
    target = tmp_path / "repro" / "nn" / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return lint_paths([target])


def test_rpr502_allocation_in_no_grad_loop(tmp_path):
    findings = _lint_nn_source(
        tmp_path,
        "import numpy as np\n"
        "def forward(model, batches):\n"
        "    with no_grad():\n"
        "        for batch in batches:\n"
        "            scratch = np.zeros(batch.shape)\n"
        "            model(batch, scratch)\n",
    )
    assert _rules_hit(findings) == {"RPR502"}
    assert findings[0].line == 5


def test_rpr502_concatenate_in_grad_disabled_branch(tmp_path):
    findings = _lint_nn_source(
        tmp_path,
        "import numpy as np\n"
        "def forward(layers, x):\n"
        "    if not is_grad_enabled():\n"
        "        for layer in layers:\n"
        "            x = np.concatenate([x, layer(x)], axis=-1)\n"
        "    return x\n",
    )
    assert _rules_hit(findings) == {"RPR502"}


def test_rpr502_whole_file_rule_in_compile_module(tmp_path):
    findings = _lint_nn_source(
        tmp_path,
        "import numpy as np\n"
        "def replay(plans):\n"
        "    for plan in plans:\n"
        "        out = np.empty((4, 4))\n"
        "        plan(out)\n",
        name="compile.py",
    )
    assert _rules_hit(findings) == {"RPR502"}


def test_rpr502_quiet_on_grad_path_loop(tmp_path):
    findings = _lint_nn_source(
        tmp_path,
        "import numpy as np\n"
        "def backward(grads):\n"
        "    for grad in grads:\n"
        "        buffer = np.zeros(grad.shape)\n"
        "        buffer += grad\n",
    )
    assert findings == []


def test_rpr502_quiet_outside_loop_and_outside_nn(tmp_path):
    no_grad_but_hoisted = (
        "import numpy as np\n"
        "def forward(model, batches):\n"
        "    with no_grad():\n"
        "        scratch = np.zeros((8, 8))\n"
        "        for batch in batches:\n"
        "            model(batch, scratch)\n"
    )
    assert _lint_nn_source(tmp_path, no_grad_but_hoisted) == []
    in_loop_but_not_nn = (
        "import numpy as np\n"
        "def forward(model, batches):\n"
        "    with no_grad():\n"
        "        for batch in batches:\n"
        "            model(batch, np.zeros((8, 8)))\n"
    )
    assert _lint_source(tmp_path, in_loop_but_not_nn) == []


def test_rpr502_noqa(tmp_path):
    findings = _lint_nn_source(
        tmp_path,
        "import numpy as np\n"
        "def forward(model, batches):\n"
        "    with no_grad():\n"
        "        for batch in batches:\n"
        "            model(batch, np.zeros((8, 8)))  # noqa: RPR502\n",
    )
    assert findings == []
