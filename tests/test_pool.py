"""Tests for the connection pool."""

from __future__ import annotations

import threading
import time

import pytest

from repro.datagen import TableGenConfig, generate_table
from repro.db import CloudDatabaseServer, ConnectionPool, CostModel, PoolExhaustedError
from repro.errors import Cancelled
from repro.faults import RetryPolicy, TransientDBError
from repro.obs import MetricsRegistry

FAST = CostModel(time_scale=0.0)


@pytest.fixture()
def server(registry, rng):
    tables = [
        generate_table(registry, TableGenConfig(min_rows=5, max_rows=10), rng, i)
        for i in range(3)
    ]
    return CloudDatabaseServer.from_tables(tables, FAST)


class TestAcquireRelease:
    def test_reuse_avoids_new_connections(self, server):
        pool = ConnectionPool(server, max_size=2)
        conn = pool.acquire()
        pool.release(conn)
        again = pool.acquire()
        assert again is conn
        assert server.ledger.connections_opened == 1
        assert pool.stats.reused == 1

    def test_exhaustion_raises(self, server):
        pool = ConnectionPool(server, max_size=1)
        pool.acquire()
        with pytest.raises(PoolExhaustedError):
            pool.acquire()

    def test_blocking_acquire_waits_for_release(self, server):
        pool = ConnectionPool(server, max_size=1)
        held = pool.acquire()

        def release_soon():
            pool.release(held)

        timer = threading.Timer(0.02, release_soon)
        timer.start()
        conn = pool.acquire(block=True, timeout=1.0)
        assert conn is held
        timer.join()

    def test_closed_connection_not_reused(self, server):
        pool = ConnectionPool(server, max_size=1)
        conn = pool.acquire()
        conn.close()
        pool.release(conn)
        fresh = pool.acquire()
        assert fresh is not conn
        assert server.ledger.connections_opened == 2

    def test_lease_context_manager(self, server):
        pool = ConnectionPool(server, max_size=1)
        with pool.lease() as conn:
            assert conn.list_tables()
        # released: acquirable again without exhaustion
        with pool.lease():
            pass
        assert pool.stats.reused == 1

    def test_close_drops_idle(self, server):
        pool = ConnectionPool(server, max_size=2)
        conn = pool.acquire()
        pool.release(conn)
        pool.close()
        fresh = pool.acquire()
        assert fresh is not conn

    def test_invalid_size(self, server):
        with pytest.raises(ValueError):
            ConnectionPool(server, max_size=0)


class TestStats:
    def test_reuse_ratio(self, server):
        pool = ConnectionPool(server, max_size=1)
        for _ in range(4):
            conn = pool.acquire()
            pool.release(conn)
        assert pool.stats.reuse_ratio == pytest.approx(0.75)

    def test_empty_ratio(self, server):
        assert ConnectionPool(server).stats.reuse_ratio == 0.0

    def test_thread_safety(self, server):
        pool = ConnectionPool(server, max_size=4)
        errors = []

        def worker():
            try:
                for _ in range(50):
                    with pool.lease() as conn:
                        conn.list_tables()
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert pool.stats.acquired == 200


class TestDeadlinesAndMetrics:
    def test_exhausted_message_names_capacity_and_timeout(self, server):
        pool = ConnectionPool(server, max_size=1)
        pool.acquire()
        with pytest.raises(PoolExhaustedError, match=r"capacity \(1\)"):
            pool.acquire()
        with pytest.raises(PoolExhaustedError, match=r"after waiting 0\.010s"):
            pool.acquire(block=True, timeout=0.01)

    def test_exhaustion_counted_in_metrics(self, server):
        metrics = MetricsRegistry()
        pool = ConnectionPool(server, max_size=1, metrics=metrics)
        pool.acquire()
        for _ in range(2):
            with pytest.raises(PoolExhaustedError):
                pool.acquire()
        assert metrics.counter("db.pool.exhausted").value == 2

    def test_spurious_wakeups_cannot_extend_the_deadline(self, server):
        """Repeated notifies without a release must not restart the wait."""
        pool = ConnectionPool(server, max_size=1)
        pool.acquire()
        timeout = 0.2
        outcome = {}

        def blocked_acquire():
            started = time.monotonic()
            try:
                pool.acquire(block=True, timeout=timeout)
            except PoolExhaustedError:
                outcome["elapsed"] = time.monotonic() - started

        waiter = threading.Thread(target=blocked_acquire)
        waiter.start()
        # Hammer the condition with spurious wakeups while nothing is idle.
        deadline = time.monotonic() + 1.0
        while waiter.is_alive() and time.monotonic() < deadline:
            with pool._lock:
                pool._lock.notify_all()
            time.sleep(0.01)
        waiter.join(timeout=2.0)
        assert not waiter.is_alive()
        # The wait honoured roughly one timeout, not one per wakeup.
        assert timeout <= outcome["elapsed"] < timeout + 0.5

    def test_abort_probe_cancels_before_waiting(self, server):
        pool = ConnectionPool(server, max_size=1)
        pool.acquire()
        with pytest.raises(Cancelled):
            pool.acquire(block=True, timeout=5.0, abort=lambda: True)

    def test_acquire_under_cancellation_wakes_promptly(self, server):
        """Regression: a blocked acquire whose abort probe flips must be
        woken by ``wake_waiters()`` immediately — not when the timeout
        expires or the next release happens to notify the condition."""
        pool = ConnectionPool(server, max_size=1)
        pool.acquire()  # exhaust the pool; nothing will be released
        cancelled = threading.Event()
        outcome: dict[str, object] = {}

        def blocked_acquire():
            started = time.monotonic()
            try:
                pool.acquire(block=True, timeout=30.0, abort=cancelled.is_set)
            except Cancelled as error:
                outcome["error"] = error
                outcome["elapsed"] = time.monotonic() - started

        waiter = threading.Thread(target=blocked_acquire)
        waiter.start()
        time.sleep(0.05)  # let the waiter reach condition.wait
        cancelled.set()
        pool.wake_waiters()
        waiter.join(timeout=5.0)
        assert not waiter.is_alive()
        assert isinstance(outcome["error"], Cancelled)
        # Woken by the canceller, far inside the 30 s acquire timeout.
        assert outcome["elapsed"] < 5.0

    def test_cancelled_acquire_takes_nothing_even_when_available(self, server):
        """Cancellation wins over availability: a flipped probe refuses
        the acquire before the fast path can hand a connection out, so a
        cancelled job never takes (and then leaks) pool capacity."""
        pool = ConnectionPool(server, max_size=1)
        with pytest.raises(Cancelled):
            pool.acquire(block=True, abort=lambda: True)
        # The refusal consumed nothing: the slot is still available.
        assert pool.acquire(block=False).list_tables()

    def test_connect_retry_policy_counts_retries(self, server):
        metrics = MetricsRegistry()
        failures = [2]  # fail the first two creation attempts

        def flaky_connect():
            if failures[0] > 0:
                failures[0] -= 1
                raise TransientDBError("injected")
            return server.connect()

        pool = ConnectionPool(
            server,
            max_size=1,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0, max_delay=0.0),
            connect=flaky_connect,
            metrics=metrics,
        )
        connection = pool.acquire()
        assert connection.list_tables()
        assert metrics.counter("db.pool.retries").value == 2

    def test_failed_creation_rolls_back_capacity(self, server):
        def always_fails():
            raise TransientDBError("down")

        pool = ConnectionPool(server, max_size=1, connect=always_fails)
        with pytest.raises(TransientDBError):
            pool.acquire()
        # The failed slot was returned: capacity is available again.
        pool._connect_factory = None
        assert pool.acquire().list_tables()
