"""Smoke tests: every example script runs end to end (downscaled)."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def load_example(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(autouse=True)
def fast_examples(monkeypatch):
    monkeypatch.setenv("EXAMPLE_TABLES", "24")
    monkeypatch.setenv("EXAMPLE_EPOCHS", "2")


def test_examples_exist():
    assert len(EXAMPLES) >= 4
    assert (EXAMPLES_DIR / "quickstart.py").exists()


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    module = load_example(path)
    module.main()
    out = capsys.readouterr().out
    assert out.strip()  # every example reports something
