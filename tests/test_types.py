"""Tests for the semantic type registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import BACKGROUND, SemanticType, TypeRegistry, default_registry
from repro.datagen import values as V


class TestDefaultRegistry:
    def test_size_and_uniqueness(self, registry):
        names = [t.name for t in registry]
        assert len(names) == len(set(names))
        assert len(registry) >= 50

    def test_parents_exist(self, registry):
        for semantic_type in registry:
            for parent in semantic_type.parents:
                assert parent in registry

    def test_every_type_has_clean_names_and_generator(self, registry, rng):
        for semantic_type in registry:
            assert semantic_type.clean_names
            value = semantic_type.generator(rng)
            assert isinstance(value, str) and value

    def test_raw_types_are_known(self, registry):
        allowed = {"int", "float", "varchar", "date", "bool"}
        assert {t.raw_type for t in registry} <= allowed

    def test_background_is_last_label(self, registry):
        assert registry.label_names[-1] == BACKGROUND
        assert registry.num_labels == len(registry) + 1


class TestLabelVectors:
    def test_roundtrip(self, registry):
        names = ["person.email", "contact.point"]
        vector = registry.labels_to_vector(names)
        assert set(registry.vector_to_labels(vector)) == set(names)

    def test_empty_maps_to_background(self, registry):
        vector = registry.labels_to_vector([])
        assert vector[registry.label_id(BACKGROUND)] == 1.0
        assert vector.sum() == 1.0
        # and background is hidden from the decoded labels
        assert registry.vector_to_labels(vector) == []

    def test_unknown_type_raises(self, registry):
        with pytest.raises(KeyError):
            registry.labels_to_vector(["no.such.type"])

    def test_threshold_respected(self, registry):
        vector = np.zeros(registry.num_labels, dtype=np.float32)
        vector[registry.label_id("geo.city")] = 0.6
        assert registry.vector_to_labels(vector, threshold=0.5) == ["geo.city"]
        assert registry.vector_to_labels(vector, threshold=0.7) == []


class TestSubset:
    def test_subset_keeps_parents(self, registry):
        sub = registry.subset(["geo.city"])
        assert "geo.city" in sub
        assert "geo.location" in sub  # parent retained

    def test_subset_label_space_shrinks(self, registry):
        sub = registry.subset(["person.age", "misc.color"])
        assert sub.num_labels < registry.num_labels


class TestValidation:
    def test_duplicate_names_rejected(self):
        t = SemanticType("x.y", "x", "int", V.age, clean_names=("y",))
        with pytest.raises(ValueError):
            TypeRegistry([t, t])

    def test_unknown_parent_rejected(self):
        t = SemanticType("x.y", "x", "int", V.age, clean_names=("y",), parents=("ghost",))
        with pytest.raises(ValueError):
            TypeRegistry([t])


class TestAmbiguityWeights:
    def test_weights_in_unit_interval(self, registry):
        for semantic_type in registry:
            assert 0.0 <= semantic_type.ambiguity_weight <= 1.0

    def test_each_pool_has_a_dominant_type(self, registry):
        """Every ambiguity pool keeps at least one full-weight member."""
        pools: dict[str, list[float]] = {}
        for semantic_type in registry:
            for name in semantic_type.ambiguous_names:
                pools.setdefault(name, []).append(semantic_type.ambiguity_weight)
        for name, weights in pools.items():
            assert max(weights) >= 0.5, f"pool word {name!r} has no dominant type"
