"""Tests for checkpoint save/load."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


@pytest.fixture()
def model(rng):
    return nn.Sequential(nn.Linear(4, 8, rng), nn.ReLU(), nn.Linear(8, 2, rng))


class TestCheckpointRoundtrip:
    def test_roundtrip_restores_weights(self, model, rng, tmp_path):
        path = nn.save_checkpoint(model, tmp_path / "model.npz")
        other = nn.Sequential(
            nn.Linear(4, 8, np.random.default_rng(7)),
            nn.ReLU(),
            nn.Linear(8, 2, np.random.default_rng(7)),
        )
        nn.load_checkpoint(other, path)
        x = nn.Tensor(rng.standard_normal((3, 4)).astype(np.float32))
        assert np.allclose(model(x).data, other(x).data)

    def test_load_state_returns_arrays(self, model, tmp_path):
        path = nn.save_checkpoint(model, tmp_path / "m.npz")
        state = nn.load_state(path)
        assert set(state) == set(model.state_dict())

    def test_creates_parent_directories(self, model, tmp_path):
        path = nn.save_checkpoint(model, tmp_path / "deep" / "nested" / "m.npz")
        assert path.exists()

    def test_strict_load_rejects_different_architecture(self, model, rng, tmp_path):
        path = nn.save_checkpoint(model, tmp_path / "m.npz")
        smaller = nn.Sequential(nn.Linear(4, 8, rng))
        with pytest.raises(KeyError):
            nn.load_checkpoint(smaller, path)
