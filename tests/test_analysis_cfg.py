"""CFG builder coverage on the control-flow shapes the leak checks rely on."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.cfg import build_cfg, iter_functions


def _cfg(source: str):
    tree = ast.parse(textwrap.dedent(source))
    func = next(
        node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return build_cfg(func), func


def _stmt_with(func: ast.AST, needle: str) -> ast.stmt:
    """The first statement whose source contains ``needle``."""
    for node in ast.walk(func):
        if isinstance(node, ast.stmt) and needle in ast.unparse(node).split("\n")[0]:
            return node
    raise AssertionError(f"no statement matching {needle!r}")


def _blocks_with(cfg, func, needle: str) -> set[int]:
    out = set()
    for node in ast.walk(func):
        if isinstance(node, ast.stmt):
            first_line = ast.unparse(node).split("\n")[0]
            if needle in first_line:
                block = cfg.block_of(node)
                if block is not None:
                    out.add(block)
    return out


def test_straight_line_reaches_exit():
    cfg, func = _cfg(
        """
        def f():
            a = 1
            b = 2
            return a + b
        """
    )
    start = cfg.block_of(_stmt_with(func, "a = 1"))
    assert cfg.reaches_exit_avoiding(start, set())
    # All three statements share one basic block.
    assert cfg.block_of(_stmt_with(func, "b = 2")) == start


def test_if_without_else_has_skip_path():
    cfg, func = _cfg(
        """
        def f(p):
            x = open_thing()
            if p:
                x.close()
            done()
        """
    )
    acquire = cfg.block_of(_stmt_with(func, "open_thing"))
    close_blocks = _blocks_with(cfg, func, "x.close()")
    # The false branch skips close: a close-avoiding path must exist.
    assert cfg.reaches_exit_avoiding(acquire, close_blocks)


def test_if_else_both_branches_covered():
    cfg, func = _cfg(
        """
        def f(p):
            x = open_thing()
            if p:
                x.close()
            else:
                x.close()
        """
    )
    acquire = cfg.block_of(_stmt_with(func, "open_thing"))
    close_blocks = _blocks_with(cfg, func, "x.close()")
    assert len(close_blocks) == 2
    assert not cfg.reaches_exit_avoiding(acquire, close_blocks)


def test_try_finally_covers_normal_and_raising_paths():
    cfg, func = _cfg(
        """
        def f():
            x = open_thing()
            try:
                use(x)
                return compute(x)
            finally:
                x.close()
        """
    )
    acquire = cfg.block_of(_stmt_with(func, "open_thing"))
    close_blocks = _blocks_with(cfg, func, "x.close()")
    # Both the early return and the implicit-exception path route
    # through the finally: no close-avoiding path exists.
    assert not cfg.reaches_exit_avoiding(acquire, close_blocks)


def test_try_except_finally_exception_edges():
    cfg, func = _cfg(
        """
        def f():
            x = open_thing()
            try:
                use(x)
            except ValueError:
                handle()
            finally:
                x.close()
            after()
        """
    )
    acquire = cfg.block_of(_stmt_with(func, "open_thing"))
    use_block = cfg.block_of(_stmt_with(func, "use(x)"))
    handler_block = cfg.block_of(_stmt_with(func, "handle()"))
    close_blocks = _blocks_with(cfg, func, "x.close()")
    after_block = cfg.block_of(_stmt_with(func, "after()"))
    # try-body has an exception edge into the handler.
    assert handler_block in cfg.reachable_from(use_block)
    # Every path passes the finally.
    assert not cfg.reaches_exit_avoiding(acquire, close_blocks)
    # Normal completion continues past the try.
    assert after_block in cfg.reachable_from(acquire)


def test_return_in_try_skips_code_after_finally():
    cfg, func = _cfg(
        """
        def f():
            try:
                return early()
            finally:
                cleanup()
            unreachable()
        """
    )
    cleanup_blocks = _blocks_with(cfg, func, "cleanup()")
    entry_reachable = cfg.reachable_from(cfg.entry)
    assert cleanup_blocks <= entry_reachable
    # The return routes through the finally straight to the exit; the
    # statement after the try is never reached.
    unreachable_block = cfg.block_of(_stmt_with(func, "unreachable()"))
    assert unreachable_block not in entry_reachable


def test_multi_item_with_and_early_return():
    cfg, func = _cfg(
        """
        def f(p):
            with lock_a, lock_b:
                if p:
                    return fast()
                slow()
            tail()
        """
    )
    with_stmt = _stmt_with(func, "with lock_a")
    assert isinstance(with_stmt, ast.With)
    assert len(with_stmt.items) == 2
    with_block = cfg.block_of(with_stmt)
    return_block = cfg.block_of(_stmt_with(func, "return fast()"))
    tail_block = cfg.block_of(_stmt_with(func, "tail()"))
    reachable = cfg.reachable_from(with_block)
    assert return_block in reachable and tail_block in reachable
    # The early return bypasses the tail but still reaches the exit.
    assert cfg.exit in cfg.reachable_from(return_block)
    assert tail_block not in cfg.reachable_from(return_block)


def test_loop_with_break_and_continue():
    cfg, func = _cfg(
        """
        def f(items):
            for item in items:
                if bad(item):
                    continue
                if done(item):
                    break
                work(item)
            after()
        """
    )
    loop_head = cfg.block_of(_stmt_with(func, "for item in items"))
    work_block = cfg.block_of(_stmt_with(func, "work(item)"))
    after_block = cfg.block_of(_stmt_with(func, "after()"))
    continue_block = cfg.block_of(_stmt_with(func, "continue"))
    break_block = cfg.block_of(_stmt_with(func, "break"))
    # continue loops back to the head, break jumps past it.
    assert loop_head in cfg.blocks[continue_block].successors or loop_head in cfg.reachable_from(continue_block)
    assert after_block in cfg.reachable_from(break_block)
    assert loop_head not in cfg.reachable_from(break_block)
    # The loop body cycles: work reaches the head again.
    assert loop_head in cfg.reachable_from(work_block)
    assert cfg.exit in cfg.reachable_from(loop_head)


def test_break_routes_through_finally():
    cfg, func = _cfg(
        """
        def f(items):
            for item in items:
                try:
                    if done(item):
                        break
                finally:
                    cleanup(item)
            after()
        """
    )
    break_block = cfg.block_of(_stmt_with(func, "break"))
    cleanup_blocks = _blocks_with(cfg, func, "cleanup(item)")
    after_block = cfg.block_of(_stmt_with(func, "after()"))
    # break cannot skip the finally on its way out of the loop.
    assert not cfg.reaches_exit_avoiding(break_block, cleanup_blocks)
    assert after_block in cfg.reachable_from(break_block)


def test_while_else_runs_only_without_break():
    cfg, func = _cfg(
        """
        def f(p):
            while p:
                if q():
                    break
            else:
                no_break()
            after()
        """
    )
    break_stmt = next(n for n in ast.walk(func) if isinstance(n, ast.Break))
    break_block = cfg.block_of(break_stmt)
    else_block = cfg.block_of(_stmt_with(func, "no_break()"))
    assert else_block not in cfg.reachable_from(break_block)
    head = cfg.block_of(_stmt_with(func, "while p"))
    assert else_block in cfg.reachable_from(head)


def test_nested_function_bodies_are_opaque():
    cfg, func = _cfg(
        """
        def outer():
            x = open_thing()

            def inner():
                return x.close()

            return inner
        """
    )
    acquire = cfg.block_of(_stmt_with(func, "open_thing"))
    # inner's close() is not part of outer's CFG: a close-avoiding path
    # exists in outer (the inner def is a single opaque statement).
    close_blocks = _blocks_with(cfg, func, "x.close()")
    assert cfg.reaches_exit_avoiding(acquire, close_blocks)


def test_iter_functions_yields_nested_qualnames():
    tree = ast.parse(
        textwrap.dedent(
            """
            def top():
                def inner():
                    pass

            class C:
                def method(self):
                    def helper():
                        pass
            """
        )
    )
    names = [qualname for qualname, _ in iter_functions(tree)]
    assert names == ["top", "top.inner", "C.method", "C.method.helper"]
    # Every yielded node builds a CFG.
    for _, node in iter_functions(tree):
        assert len(build_cfg(node)) >= 2  # entry + exit at minimum


def test_raise_reaches_handler_and_finally():
    cfg, func = _cfg(
        """
        def f():
            try:
                raise ValueError("boom")
            except ValueError:
                handled()
            finally:
                cleanup()
            after()
        """
    )
    raise_block = cfg.block_of(_stmt_with(func, "raise ValueError"))
    handler_block = cfg.block_of(_stmt_with(func, "handled()"))
    cleanup_blocks = _blocks_with(cfg, func, "cleanup()")
    assert handler_block in cfg.reachable_from(raise_block)
    assert not cfg.reaches_exit_avoiding(raise_block, cleanup_blocks)
    assert cfg.block_of(_stmt_with(func, "after()")) in cfg.reachable_from(raise_block)
