"""Tests for metrics: micro PRF, runtime aggregation, table rendering."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    RunTiming,
    confusion_counts,
    ground_truth_map,
    measure_runs,
    micro_prf,
    render_table,
)


class TestMicroPRF:
    def test_perfect_prediction(self):
        truth = {("t", "a"): ["x"], ("t", "b"): ["y", "z"]}
        prf = micro_prf(truth, truth)
        assert prf.precision == prf.recall == prf.f1 == 1.0

    def test_counts(self):
        truth = {("t", "a"): ["x", "y"]}
        preds = {("t", "a"): ["x", "z"]}
        tp, fp, fn = confusion_counts(preds, truth)
        assert (tp, fp, fn) == (1, 1, 1)

    def test_missing_prediction_counts_as_empty(self):
        truth = {("t", "a"): ["x"]}
        prf = micro_prf({}, truth)
        assert prf.recall == 0.0
        assert prf.false_negatives == 1

    def test_extra_predicted_keys_ignored(self):
        truth = {("t", "a"): ["x"]}
        preds = {("t", "a"): ["x"], ("t", "ghost"): ["y"]}
        assert micro_prf(preds, truth).f1 == 1.0

    def test_empty_truth_lists_neutral(self):
        """Background columns (no types) contribute nothing when predicted empty."""
        truth = {("t", "a"): [], ("t", "b"): ["x"]}
        preds = {("t", "a"): [], ("t", "b"): ["x"]}
        prf = micro_prf(preds, truth)
        assert prf.f1 == 1.0
        assert prf.true_positives == 1

    def test_false_positive_on_background_column(self):
        truth = {("t", "a"): []}
        preds = {("t", "a"): ["x"]}
        prf = micro_prf(preds, truth)
        assert prf.precision == 0.0
        assert prf.false_positives == 1

    def test_all_empty_gives_zero_f1(self):
        assert micro_prf({}, {("t", "a"): []}).f1 == 0.0

    @given(
        st.dictionaries(
            st.tuples(st.just("t"), st.text(min_size=1, max_size=4)),
            st.lists(st.sampled_from(["x", "y", "z"]), max_size=3),
            max_size=8,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_self_prediction_is_perfect_or_zero(self, truth):
        prf = micro_prf(truth, truth)
        has_labels = any(types for types in truth.values())
        assert prf.f1 == (1.0 if has_labels else 0.0)


class TestGroundTruthMap:
    def test_maps_all_columns(self, tiny_corpus):
        mapping = ground_truth_map(tiny_corpus.test)
        assert len(mapping) == sum(t.num_columns for t in tiny_corpus.test)
        key = (tiny_corpus.test[0].name, tiny_corpus.test[0].columns[0].name)
        assert mapping[key] == tiny_corpus.test[0].columns[0].types


class TestRunTiming:
    def test_of_single_sample(self):
        timing = RunTiming.of([2.0])
        assert timing.mean_seconds == 2.0
        assert timing.stdev_seconds == 0.0

    def test_of_multiple(self):
        timing = RunTiming.of([1.0, 3.0])
        assert timing.mean_seconds == 2.0
        assert timing.stdev_seconds == pytest.approx(1.4142, rel=1e-3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            RunTiming.of([])

    def test_measure_runs(self):
        calls = []

        def fake_run():
            calls.append(1)
            return 0.5

        timing = measure_runs(fake_run, repeats=3)
        assert timing.runs == 3 and len(calls) == 3

    def test_measure_runs_validates(self):
        with pytest.raises(ValueError):
            measure_runs(lambda: 0.0, repeats=0)


class TestRenderTable:
    def test_alignment_and_title(self):
        out = render_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        out = render_table(["col"], [])
        assert "col" in out
