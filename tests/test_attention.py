"""Tests for multi-head self- and cross-attention."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import functional as F


@pytest.fixture()
def attention(rng):
    return nn.MultiHeadAttention(hidden_size=8, num_heads=2, dropout_p=0.0, rng=rng)


class TestShapes:
    def test_self_attention_shape(self, attention, rng):
        x = nn.Tensor(rng.standard_normal((2, 5, 8)).astype(np.float32))
        assert attention(x, x).shape == (2, 5, 8)

    def test_cross_attention_query_length_preserved(self, attention, rng):
        q = nn.Tensor(rng.standard_normal((2, 3, 8)).astype(np.float32))
        kv = nn.Tensor(rng.standard_normal((2, 9, 8)).astype(np.float32))
        assert attention(q, kv).shape == (2, 3, 8)

    def test_invalid_head_split_raises(self, rng):
        with pytest.raises(ValueError):
            nn.MultiHeadAttention(hidden_size=7, num_heads=2, dropout_p=0.0, rng=rng)


class TestMasking:
    def test_padded_keys_are_ignored(self, attention, rng):
        """Output must be invariant to values at masked key positions."""
        kv_a = rng.standard_normal((1, 4, 8)).astype(np.float32)
        kv_b = kv_a.copy()
        kv_b[0, 3] = 99.0  # only the masked position differs
        q = nn.Tensor(rng.standard_normal((1, 2, 8)).astype(np.float32))
        mask = F.additive_attention_mask(np.array([[True, True, True, False]]))
        out_a = attention(q, nn.Tensor(kv_a), mask)
        out_b = attention(q, nn.Tensor(kv_b), mask)
        assert np.allclose(out_a.data, out_b.data, atol=1e-5)

    def test_unmasked_keys_matter(self, attention, rng):
        kv_a = rng.standard_normal((1, 4, 8)).astype(np.float32)
        kv_b = kv_a.copy()
        kv_b[0, 1] = 99.0
        q = nn.Tensor(rng.standard_normal((1, 2, 8)).astype(np.float32))
        out_a = attention(q, nn.Tensor(kv_a))
        out_b = attention(q, nn.Tensor(kv_b))
        assert not np.allclose(out_a.data, out_b.data, atol=1e-3)


class TestGradients:
    def test_gradients_reach_all_projections(self, attention, rng):
        x = nn.Tensor(rng.standard_normal((2, 4, 8)).astype(np.float32), requires_grad=True)
        attention(x, x).sum().backward()
        for proj in (
            attention.query_proj,
            attention.key_proj,
            attention.value_proj,
            attention.output_proj,
        ):
            assert proj.weight.grad is not None
            assert np.abs(proj.weight.grad).sum() > 0
        assert x.grad is not None

    def test_cross_attention_gradient_reaches_kv(self, attention, rng):
        q = nn.Tensor(rng.standard_normal((1, 2, 8)).astype(np.float32), requires_grad=True)
        kv = nn.Tensor(rng.standard_normal((1, 6, 8)).astype(np.float32), requires_grad=True)
        attention(q, kv).sum().backward()
        assert np.abs(kv.grad).sum() > 0
        assert np.abs(q.grad).sum() > 0
