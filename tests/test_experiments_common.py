"""Tests for the experiment harness plumbing (scales, cache, cost model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.common import (
    SCALES,
    encoder_config,
    get_corpus,
    get_scale,
    paper_cost_model,
)
from repro.experiments.runner import EXPERIMENTS, main


class TestScales:
    def test_known_profiles(self):
        assert {"default", "small"} <= set(SCALES)

    def test_get_scale_by_name(self):
        assert get_scale("small").name == "small"

    def test_get_scale_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert get_scale().name == "small"

    def test_unknown_scale_raises(self):
        with pytest.raises(KeyError):
            get_scale("giant")

    def test_small_is_smaller(self):
        assert SCALES["small"].num_tables <= SCALES["default"].num_tables


class TestPaperCostModel:
    def test_proportions(self):
        model = paper_cost_model()
        # Scans are an order of magnitude costlier than metadata fetches.
        scan_cost = model.scan_fixed + model.scan_per_row * 50
        assert scan_cost > 5 * model.metadata_per_table

    def test_time_scale_passthrough(self):
        assert paper_cost_model(time_scale=0.0).time_scale == 0.0


class TestEncoderConfig:
    def test_vocab_size_threaded(self):
        assert encoder_config(1234).vocab_size == 1234

    def test_cpu_scale(self):
        config = encoder_config(1000)
        assert config.hidden_size <= 128
        assert config.num_layers <= 4


class TestCorpusMemo:
    def test_same_object_returned(self):
        scale = get_scale("small")
        assert get_corpus("wikitable", scale) is get_corpus("wikitable", scale)

    def test_unknown_corpus(self):
        with pytest.raises(KeyError):
            get_corpus("csvfiles", get_scale("small"))


class TestRunnerCLI:
    def test_experiment_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "table2", "table3", "table4", "fig4", "fig5", "fig6", "fig7", "fig8",
            "ablation_awl", "extra_baselines", "ablation_pretrain",
        }

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_table2_runs_end_to_end(self, capsys):
        assert main(["table2", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "wikitable" in out and "gittables" in out


class TestCLIEntryPoint:
    def test_console_script_help(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro.experiments.runner", "--help"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "taste-repro" in result.stdout
