"""Integration tests: train -> serve -> detect across the whole stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.baselines import BaselineDetector, BaselineTrainConfig, build_turl_model, fine_tune_baseline
from repro.core import (
    ADTDConfig,
    ADTDModel,
    TasteDetector,
    ThresholdPolicy,
    TrainConfig,
    fine_tune,
)
from repro.db import CloudDatabaseServer, CostModel
from repro.metrics import ground_truth_map, micro_prf

FAST = CostModel(time_scale=0.0)


@pytest.fixture(scope="module")
def stack(tokenizer, tiny_corpus, featurizer, tiny_encoder):
    """An ADTD model trained to convergence on the tiny corpus.

    At this corpus size (a few dozen tables) the model memorizes rather
    than generalizes, so the end-to-end assertions below run detection over
    *training* tables: they verify the full pipeline (database -> features
    -> two-phase model -> metrics), not held-out generalization — that is
    what the experiment harness measures at real scale.
    """
    model = ADTDModel(
        ADTDConfig(tiny_encoder, num_labels=tiny_corpus.registry.num_labels), seed=1
    )
    fine_tune(
        model,
        featurizer,
        tiny_corpus.train,
        TrainConfig(epochs=40, batch_size=4, learning_rate=5e-3),
    )
    return model


@pytest.fixture(scope="module")
def eval_tables(tiny_corpus):
    return tiny_corpus.train[:15]


class TestTasteEndToEnd:
    def test_full_pipeline_recovers_known_labels(self, stack, featurizer, eval_tables):
        server = CloudDatabaseServer.from_tables(eval_tables, FAST)
        detector = TasteDetector(stack, featurizer, ThresholdPolicy(0.1, 0.9))
        report = detector.detect(server)
        prf = micro_prf(report.predicted_labels(), ground_truth_map(eval_tables))
        assert prf.f1 > 0.8

    def test_phase2_improves_over_phase1_only(self, stack, featurizer, eval_tables):
        ground_truth = ground_truth_map(eval_tables)

        server = CloudDatabaseServer.from_tables(eval_tables, FAST)
        full = TasteDetector(stack, featurizer, ThresholdPolicy(0.1, 0.9)).detect(server)
        server = CloudDatabaseServer.from_tables(eval_tables, FAST)
        p1 = TasteDetector(
            stack, featurizer, ThresholdPolicy.privacy_mode()
        ).detect(server)

        f1_full = micro_prf(full.predicted_labels(), ground_truth).f1
        f1_p1 = micro_prf(p1.predicted_labels(), ground_truth).f1
        # On memorized training tables both modes are near-perfect; the
        # held-out version of this claim is asserted by the Table 4 bench.
        assert f1_full >= f1_p1 - 0.02
        assert f1_full > 0.8

    def test_detection_is_deterministic(self, stack, featurizer, tiny_corpus):
        results = []
        for _ in range(2):
            server = CloudDatabaseServer.from_tables(tiny_corpus.test, FAST)
            detector = TasteDetector(
                stack, featurizer, ThresholdPolicy(0.1, 0.9), pipelined=False
            )
            report = detector.detect(server)
            results.append(
                {
                    (p.table_name, p.column_name): tuple(p.admitted_types)
                    for p in report.predictions
                }
            )
        assert results[0] == results[1]

    def test_checkpoint_roundtrip_preserves_predictions(
        self, stack, featurizer, tiny_corpus, tiny_encoder, tmp_path
    ):
        path = nn.save_checkpoint(stack, tmp_path / "adtd.npz")
        clone = ADTDModel(
            ADTDConfig(tiny_encoder, num_labels=tiny_corpus.registry.num_labels),
            seed=99,
        )
        nn.load_checkpoint(clone, path)

        server_a = CloudDatabaseServer.from_tables(tiny_corpus.test[:3], FAST)
        server_b = CloudDatabaseServer.from_tables(tiny_corpus.test[:3], FAST)
        policy = ThresholdPolicy(0.1, 0.9)
        report_a = TasteDetector(stack, featurizer, policy, pipelined=False).detect(server_a)
        report_b = TasteDetector(clone, featurizer, policy, pipelined=False).detect(server_b)
        for a, b in zip(report_a.predictions, report_b.predictions):
            assert np.allclose(a.probabilities, b.probabilities, atol=1e-6)


class TestBaselineEndToEnd:
    def test_turl_like_pipeline(self, tiny_encoder, featurizer, tiny_corpus):
        model = build_turl_model(tiny_encoder, tiny_corpus.registry.num_labels)
        fine_tune_baseline(
            model,
            featurizer,
            tiny_corpus.train[:12],
            BaselineTrainConfig(epochs=4, batch_size=6),
        )
        server = CloudDatabaseServer.from_tables(tiny_corpus.test, FAST)
        report = BaselineDetector(model, featurizer).detect(server)
        assert server.scanned_ratio() == 1.0
        assert report.num_columns == sum(t.num_columns for t in tiny_corpus.test)


class TestSQLPathIntegration:
    def test_detector_and_sql_agree_on_metadata(self, tiny_corpus):
        server = CloudDatabaseServer.from_tables(tiny_corpus.test, FAST)
        conn = server.connect()
        table = tiny_corpus.test[0]
        rows = conn.execute(
            f"SELECT * FROM information_schema.columns WHERE table_name = '{table.name}'"
        )
        metadata = conn.fetch_metadata(table.name)
        assert [r["column_name"] for r in rows] == [
            c.column_name for c in metadata.columns
        ]
