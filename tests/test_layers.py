"""Tests for basic layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn


class TestLinear:
    def test_forward_shape(self, rng):
        layer = nn.Linear(4, 7, rng)
        assert layer(nn.Tensor(np.ones((3, 4)))).shape == (3, 7)

    def test_affine_math(self, rng):
        layer = nn.Linear(2, 2, rng)
        layer.weight.data = np.eye(2, dtype=np.float32)
        layer.bias.data = np.array([1.0, -1.0], dtype=np.float32)
        out = layer(nn.Tensor(np.array([[3.0, 4.0]])))
        assert np.allclose(out.data, [[4.0, 3.0]])

    def test_gradients_flow(self, rng):
        layer = nn.Linear(3, 2, rng)
        layer(nn.Tensor(np.ones((5, 3)))).sum().backward()
        assert layer.weight.grad.shape == (3, 2)
        assert np.allclose(layer.bias.grad, 5.0)


class TestEmbedding:
    def test_lookup(self, rng):
        emb = nn.Embedding(10, 4, rng)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_grad_scatter(self, rng):
        emb = nn.Embedding(5, 3, rng)
        emb(np.array([0, 0, 1])).sum().backward()
        assert np.allclose(emb.weight.grad[0], 2.0)


class TestLayerNormLayer:
    def test_normalizes(self, rng):
        layer = nn.LayerNorm(6)
        out = layer(nn.Tensor(rng.standard_normal((4, 6)).astype(np.float32)))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-5)


class TestDropoutLayer:
    def test_respects_training_flag(self, rng):
        layer = nn.Dropout(0.5, rng)
        x = nn.Tensor(np.ones((10, 10)))
        layer.training = False
        assert np.array_equal(layer(x).data, x.data)
        layer.training = True
        # dropout only takes effect when gradients are being recorded
        y = nn.Tensor(np.ones((10, 10)), requires_grad=True)
        assert not np.array_equal(layer(y).data, y.data)


class TestActivations:
    def test_relu_module(self):
        assert np.allclose(nn.ReLU()(nn.Tensor(np.array([-1.0, 2.0]))).data, [0.0, 2.0])

    def test_gelu_module(self):
        out = nn.GELU()(nn.Tensor(np.array([0.0], dtype=np.float32)))
        assert out.data[0] == pytest.approx(0.0)


class TestSequential:
    def test_chains(self, rng):
        seq = nn.Sequential(nn.Linear(2, 4, rng), nn.ReLU(), nn.Linear(4, 1, rng))
        assert seq(nn.Tensor(np.ones((3, 2)))).shape == (3, 1)
