"""Tests for table generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datagen import TableGenConfig, Table, default_registry, generate_table
from repro.datagen.noise import abbreviate, cryptic_name, maybe_abbreviate


class TestNoise:
    @pytest.mark.parametrize(
        "word,expected",
        [("customer", "cstmr"), ("name", "nm"), ("id", "id"), ("zip", "zip")],
    )
    def test_abbreviate(self, word, expected):
        assert abbreviate(word) == expected

    def test_maybe_abbreviate_prob_zero_is_identity(self, rng):
        assert maybe_abbreviate("customer_name", rng, 0.0) == "customer_name"

    def test_maybe_abbreviate_prob_one_strips_all(self, rng):
        assert maybe_abbreviate("customer_name", rng, 1.0) == "cstmr_nm"

    def test_cryptic_name_format(self, rng):
        for _ in range(10):
            name = cryptic_name(rng)
            assert any(name.startswith(p) for p in ("f", "c", "attr", "field", "x"))


class TestGenerateTable:
    def test_column_and_row_ranges(self, registry, rng):
        config = TableGenConfig(min_columns=3, max_columns=5, min_rows=10, max_rows=12)
        for i in range(10):
            table = generate_table(registry, config, rng, i)
            assert 3 <= table.num_columns <= 5
            assert 10 <= table.num_rows <= 12

    def test_column_names_unique(self, registry, rng):
        config = TableGenConfig(min_columns=8, max_columns=8, ambiguous_name_prob=1.0)
        for i in range(10):
            table = generate_table(registry, config, rng, i)
            names = [c.name for c in table.columns]
            assert len(names) == len(set(names))

    def test_background_fraction_respected(self, registry, rng):
        config = TableGenConfig(background_fraction=1.0)
        table = generate_table(registry, config, rng, 0)
        assert all(not c.types for c in table.columns)

    def test_no_background_when_fraction_zero(self, registry, rng):
        config = TableGenConfig(background_fraction=0.0)
        table = generate_table(registry, config, rng, 0)
        assert all(c.types for c in table.columns)

    def test_multi_label_parents_included(self, registry, rng):
        config = TableGenConfig(min_columns=8, max_columns=8, multi_label=True)
        found_parent = False
        for i in range(30):
            table = generate_table(registry, config, rng, i)
            for column in table.columns:
                if len(column.types) > 1:
                    child = registry.get(column.types[0])
                    assert set(column.types[1:]) == set(child.parents)
                    found_parent = True
        assert found_parent

    def test_multi_label_disabled(self, registry, rng):
        config = TableGenConfig(multi_label=False)
        for i in range(10):
            table = generate_table(registry, config, rng, i)
            assert all(len(c.types) <= 1 for c in table.columns)

    def test_types_unique_within_table(self, registry, rng):
        config = TableGenConfig(min_columns=8, max_columns=8, background_fraction=0.0)
        for i in range(10):
            table = generate_table(registry, config, rng, i)
            primary = [c.types[0] for c in table.columns if c.types]
            assert len(primary) == len(set(primary))

    def test_empty_cell_probability(self, registry):
        config = TableGenConfig(empty_cell_prob=0.5, min_rows=200, max_rows=200)
        table = generate_table(registry, config, np.random.default_rng(0), 0)
        empties = sum(1 for c in table.columns for v in c.values if not v)
        total = sum(len(c.values) for c in table.columns)
        assert 0.4 < empties / total < 0.6

    def test_deterministic_given_rng_state(self, registry):
        a = generate_table(registry, TableGenConfig(), np.random.default_rng(5), 0)
        b = generate_table(registry, TableGenConfig(), np.random.default_rng(5), 0)
        assert a.name == b.name
        assert [c.name for c in a.columns] == [c.name for c in b.columns]
        assert a.columns[0].values == b.columns[0].values


class TestColumn:
    def test_non_empty_values_limit(self, registry, rng):
        config = TableGenConfig(empty_cell_prob=0.3, min_rows=50, max_rows=50)
        table = generate_table(registry, config, rng, 0)
        column = table.columns[0]
        values = column.non_empty_values(limit=5)
        assert len(values) <= 5
        assert all(values)


class TestTableSplit:
    def test_split_chunk_sizes(self, sample_table):
        wide = Table("wide", "c", sample_table.columns * 4)
        chunks = wide.split(5)
        assert sum(c.num_columns for c in chunks) == wide.num_columns
        assert all(c.num_columns <= 5 for c in chunks)

    def test_split_preserves_table_metadata(self, sample_table):
        wide = Table("wide", "the comment", sample_table.columns * 3)
        for chunk in wide.split(4):
            assert chunk.name == "wide"
            assert chunk.comment == "the comment"

    def test_narrow_table_not_split(self, sample_table):
        assert sample_table.split(100) == [sample_table]

    def test_invalid_threshold(self, sample_table):
        with pytest.raises(ValueError):
            sample_table.split(0)
