"""Shared fixtures: tiny corpora, tokenizers and models kept session-scoped
so the suite stays fast while still exercising real trained behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.core import ADTDConfig, ADTDModel, TrainConfig, fine_tune
from repro.datagen import TableGenConfig, default_registry, generate_table, make_wikitable_corpus
from repro.features import FeatureConfig, Featurizer, corpus_texts
from repro.text import Tokenizer


@pytest.fixture(scope="session")
def registry():
    return default_registry()


@pytest.fixture(scope="session")
def tiny_corpus():
    return make_wikitable_corpus(num_tables=30)


@pytest.fixture(scope="session")
def tokenizer(tiny_corpus):
    return Tokenizer.train(corpus_texts(tiny_corpus.tables), max_size=1500)


@pytest.fixture(scope="session")
def tiny_encoder(tokenizer):
    return nn.EncoderConfig(
        num_layers=1,
        num_heads=2,
        hidden_size=32,
        intermediate_size=64,
        max_seq_len=512,
        vocab_size=len(tokenizer),
        dropout_p=0.0,
    )


@pytest.fixture(scope="session")
def featurizer(tokenizer, tiny_corpus):
    return Featurizer(tokenizer, tiny_corpus.registry, FeatureConfig())


@pytest.fixture(scope="session")
def untrained_model(tiny_encoder, tiny_corpus):
    return ADTDModel(
        ADTDConfig(tiny_encoder, num_labels=tiny_corpus.registry.num_labels), seed=0
    )


@pytest.fixture(scope="session")
def trained_model(tiny_encoder, tiny_corpus, featurizer):
    """An ADTD model briefly fine-tuned on the tiny corpus."""
    model = ADTDModel(
        ADTDConfig(tiny_encoder, num_labels=tiny_corpus.registry.num_labels), seed=0
    )
    fine_tune(
        model,
        featurizer,
        tiny_corpus.train,
        TrainConfig(epochs=6, batch_size=8, learning_rate=3e-3),
    )
    return model


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


@pytest.fixture()
def sample_table(registry, rng):
    config = TableGenConfig(min_columns=4, max_columns=6, min_rows=30, max_rows=40)
    return generate_table(registry, config, rng, table_id=0)
