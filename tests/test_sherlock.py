"""Tests for the Sherlock-like statistical baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.baselines import (
    SHERLOCK_FEATURE_DIM,
    SherlockModel,
    SherlockTrainConfig,
    sherlock_features,
    train_sherlock,
)
from repro.datagen import values as V


class TestFeatures:
    def test_dimension_and_bounds(self, rng):
        features = sherlock_features([V.email(rng) for _ in range(10)])
        assert features.shape == (SHERLOCK_FEATURE_DIM,)
        assert np.isfinite(features).all()

    def test_empty_column_is_zero_vector(self):
        assert np.allclose(sherlock_features([]), 0.0)
        assert np.allclose(sherlock_features(["", ""]), 0.0)

    def test_digit_columns_have_high_digit_fraction(self, rng):
        features = sherlock_features([V.zip_code(rng) for _ in range(10)])
        assert features[0] > 0.9  # digit fraction

    def test_email_pattern_indicator(self, rng):
        features = sherlock_features([V.email(rng) for _ in range(10)])
        at_index = SHERLOCK_FEATURE_DIM - 6
        assert features[at_index] == 1.0

    def test_discriminates_types(self, rng):
        emails = sherlock_features([V.email(rng) for _ in range(10)])
        ssns = sherlock_features([V.ssn(rng) for _ in range(10)])
        assert np.abs(emails - ssns).max() > 0.3


class TestModelTraining:
    def test_learns_to_separate_types(self, registry, rng):
        """A small Sherlock net separates format-distinct types."""
        type_names = ["person.email", "person.ssn", "web.ip_address", "time.date"]
        generators = {
            "person.email": V.email,
            "person.ssn": V.ssn,
            "web.ip_address": V.ip_address,
            "time.date": V.iso_date,
        }
        from repro.datagen import Column, Table

        tables = []
        for i in range(20):
            columns = [
                Column(f"c{j}", "", "varchar",
                       [generators[name](rng) for _ in range(12)], [name])
                for j, name in enumerate(type_names)
            ]
            tables.append(Table(f"t{i}", "", columns))

        model = SherlockModel(registry.num_labels, hidden_dim=64)
        history = train_sherlock(
            model, registry, tables, SherlockTrainConfig(epochs=40, batch_size=16)
        )
        assert history.epoch_losses[-1] < history.epoch_losses[0]

        correct = 0
        for name in type_names:
            features = sherlock_features([generators[name](rng) for _ in range(12)])
            with nn.no_grad():
                logits = model(nn.Tensor(features[None, :])).data[0]
            predicted = registry.label_names[int(np.argmax(logits))]
            correct += predicted == name
        assert correct >= 3

    def test_empty_tables_rejected(self, registry):
        with pytest.raises(ValueError):
            train_sherlock(SherlockModel(registry.num_labels), registry, [])


class TestCalibrationMetric:
    def test_perfectly_calibrated(self):
        from repro.metrics import calibration_report

        rng = np.random.default_rng(0)
        probs = rng.random(20_000)
        outcomes = (rng.random(20_000) < probs).astype(float)
        report = calibration_report(probs, outcomes)
        assert report.expected_calibration_error < 0.02
        assert report.num_predictions == 20_000

    def test_overconfident_model_flagged(self):
        from repro.metrics import calibration_report

        probs = np.full(1000, 0.99)
        outcomes = np.zeros(1000)
        report = calibration_report(probs, outcomes)
        assert report.expected_calibration_error > 0.9
        assert report.max_calibration_error > 0.9

    def test_bins_cover_unit_interval(self):
        from repro.metrics import calibration_report

        report = calibration_report(np.array([0.0, 0.5, 1.0]), np.array([0, 1, 1]))
        assert report.bins[0].lower == 0.0
        assert report.bins[-1].upper == 1.0
        assert sum(b.count for b in report.bins) == 3

    def test_shape_mismatch_raises(self):
        from repro.metrics import calibration_report

        with pytest.raises(ValueError):
            calibration_report(np.zeros(3), np.zeros(4))

    def test_bad_bins_raise(self):
        from repro.metrics import calibration_report

        with pytest.raises(ValueError):
            calibration_report(np.zeros(2), np.zeros(2), num_bins=0)
