"""Quickstart: train a small TASTE detector and label one table.

Builds a synthetic table corpus, fine-tunes the ADTD model for a few
minutes of CPU time, hosts the test tables in the simulated cloud database,
and runs two-phase detection on one table — printing which phase decided
each column and which columns' content was actually scanned.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import os

import time

from repro import nn
from repro.core import ADTDConfig, ADTDModel, TasteDetector, ThresholdPolicy, TrainConfig, fine_tune
from repro.datagen import make_wikitable_corpus
from repro.db import CloudDatabaseServer, CostModel
from repro.features import FeatureConfig, Featurizer, corpus_texts
from repro.text import Tokenizer


def main() -> None:
    # 1. A corpus of synthetic relational tables (WikiTable-like regime).
    corpus = make_wikitable_corpus(num_tables=int(os.environ.get("EXAMPLE_TABLES", 120)))
    print(f"corpus: {corpus.stats().num_tables} tables, "
          f"{corpus.stats().num_columns} columns, "
          f"{len(corpus.registry)} semantic types")

    # 2. Tokenizer + featurizer over the training split.
    tokenizer = Tokenizer.train(corpus_texts(corpus.train), max_size=2500)
    featurizer = Featurizer(tokenizer, corpus.registry, FeatureConfig())

    # 3. The ADTD model (metadata tower + content tower, shared blocks).
    encoder = nn.EncoderConfig(
        num_layers=2, num_heads=4, hidden_size=64, intermediate_size=128,
        max_seq_len=512, vocab_size=len(tokenizer),
    )
    model = ADTDModel(ADTDConfig(encoder, num_labels=corpus.registry.num_labels))
    print(f"model: {model.num_parameters():,} parameters")

    started = time.perf_counter()
    epochs = int(os.environ.get("EXAMPLE_EPOCHS", 16))
    history = fine_tune(model, featurizer, corpus.train, TrainConfig(epochs=epochs))
    print(f"fine-tuned in {time.perf_counter() - started:.0f}s "
          f"(final losses: meta={history.meta_losses[-1]:.4f}, "
          f"content={history.content_losses[-1]:.4f})")

    # 4. Host the test tables behind the simulated cloud database.
    server = CloudDatabaseServer.from_tables(corpus.test, CostModel())

    # 5. Two-phase detection with the default certainty thresholds.
    detector = TasteDetector(model, featurizer, ThresholdPolicy(alpha=0.1, beta=0.9))
    table = corpus.test[0]
    report = detector.detect_table(server, table.name)

    print(f"\ntable {table.name!r}:")
    truth = {c.name: c.types for c in table.columns}
    for prediction in report.predictions:
        print(
            f"  {prediction.column_name:24s} phase={prediction.phase} "
            f"predicted={prediction.admitted_types or ['<none>']} "
            f"truth={truth[prediction.column_name] or ['<none>']}"
        )
    print(f"\nscanned {server.ledger.num_scanned_columns()} of "
          f"{table.num_columns} columns "
          f"({report.scanned_ratio():.0%} needed Phase 2)")


if __name__ == "__main__":
    main()
