"""Adaptive catalog: extend the type domain set and learn from feedback.

Demonstrates both of the paper's future-work directions implemented in this
reproduction (Sec. 8):

1. **Domain-set extension** — a new semantic type ("loyalty card number")
   is added to a production detector *without retraining from scratch*:
   the classifier output layers grow, all other weights transfer, and a
   short incremental fine-tune teaches the new type.
2. **User feedback** — a data steward corrects a detection; a bounded
   online update makes the detector agree with the correction.

Run:  python examples/adaptive_catalog.py
"""

from __future__ import annotations

import os

import numpy as np

from repro import nn
from repro.core import (
    ADTDConfig,
    ADTDModel,
    FeedbackBuffer,
    TasteDetector,
    ThresholdPolicy,
    TrainConfig,
    apply_feedback,
    fine_tune,
    incremental_fine_tune,
)
from repro.datagen import (
    Column,
    SemanticType,
    TableGenConfig,
    default_registry,
    generate_table,
    make_wikitable_corpus,
)
from repro.datagen.values import luhn_checksum_digit
from repro.db import CloudDatabaseServer, CostModel
from repro.features import FeatureConfig, Featurizer, collate, corpus_texts
from repro.text import Tokenizer


def loyalty_card(rng: np.random.Generator) -> str:
    body = "77" + "".join(str(int(d)) for d in rng.integers(0, 10, 9))
    return body + luhn_checksum_digit(body)


LOYALTY = SemanticType(
    "commerce.loyalty_card", "commerce", "varchar", loyalty_card,
    clean_names=("loyalty_card", "member_card", "loyalty_no"),
    comments=("customer loyalty program card number",),
)


def main() -> None:
    tables = int(os.environ.get("EXAMPLE_TABLES", 120))
    epochs = int(os.environ.get("EXAMPLE_EPOCHS", 16))

    # --- a "production" detector over the stock domain set -------------
    registry = default_registry()
    corpus = make_wikitable_corpus(num_tables=tables, registry=registry)
    tokenizer = Tokenizer.train(corpus_texts(corpus.train), max_size=2500)
    featurizer = Featurizer(tokenizer, registry, FeatureConfig())
    encoder = nn.EncoderConfig(
        num_layers=2, num_heads=4, hidden_size=64, intermediate_size=128,
        max_seq_len=512, vocab_size=len(tokenizer),
    )
    model = ADTDModel(ADTDConfig(encoder, num_labels=registry.num_labels))
    print("training the production detector...")
    fine_tune(model, featurizer, corpus.train, TrainConfig(epochs=epochs))

    # --- 1. extend the domain set incrementally ------------------------
    rng = np.random.default_rng(7)
    config = TableGenConfig(min_columns=3, max_columns=5)
    new_tables = []
    for i in range(max(tables // 8, 8)):
        table = generate_table(registry, config, rng, 10_000 + i)
        values = [loyalty_card(rng) for _ in range(table.num_rows)]
        table.columns[0] = Column(
            "loyalty_card", "", "varchar", values, ["commerce.loyalty_card"]
        )
        new_tables.append(table)

    print(f"\nextending domain set with {LOYALTY.name!r} "
          f"({len(new_tables)} example tables, short fine-tune)...")
    result = incremental_fine_tune(
        model,
        registry,
        [LOYALTY],
        featurizer_factory=lambda reg: Featurizer(tokenizer, reg, FeatureConfig()),
        new_tables=new_tables,
        replay_tables=corpus.train[: len(new_tables)],
        config=TrainConfig(epochs=max(epochs // 3, 2), learning_rate=1e-3),
    )
    extended_featurizer = Featurizer(tokenizer, result.registry, FeatureConfig())

    server = CloudDatabaseServer.from_tables(new_tables[:3], CostModel())
    detector = TasteDetector(result.model, extended_featurizer, ThresholdPolicy(0.1, 0.9))
    report = detector.detect(server)
    hits = sum(
        1 for p in report.predictions if "commerce.loyalty_card" in p.admitted_types
    )
    print(f"detector now tags loyalty cards: {hits} columns found "
          f"in {len(report.tables)} tables")

    # --- 2. adapt to a steward's correction ----------------------------
    victim = corpus.test[0]
    column = victim.columns[0]
    asserted = "misc.color" if "misc.color" not in column.types else "geo.city"
    print(f"\nsteward asserts {victim.name}.{column.name} is {asserted!r}; "
          "applying bounded online update...")
    buffer = FeedbackBuffer()
    buffer.record(victim, column.name, [asserted])
    stats = apply_feedback(result.model, extended_featurizer, buffer, steps=12)
    print(f"feedback applied over {stats.steps} steps "
          f"(loss {stats.initial_loss:.4f} -> {stats.final_loss:.4f})")

    batch = collate([extended_featurizer.encode_offline(victim)])
    with nn.no_grad():
        logits = result.model.meta_logits(
            batch, result.model.encode_metadata(batch)
        ).data[0]
    prob = 1 / (1 + np.exp(-logits))[0, result.registry.label_id(asserted)]
    print(f"P({asserted!r} | metadata) for the corrected column is now {prob:.2f}")


if __name__ == "__main__":
    main()
