"""Bulk catalog scan: pipelined PII discovery over a tenant database.

The cloud-provider scenario from the paper's introduction: given a tenant
database with many tables, tag every column that holds sensitive data
(PII / payment data), as fast and as non-intrusively as possible. Uses the
pipelined executor (Algorithm 1) and compares it against sequential
execution, then prints a sensitive-data report with the database-side cost.

Run:  python examples/bulk_catalog_scan.py
"""

from __future__ import annotations

import os

from repro import nn
from repro.core import (
    ADTDConfig,
    ADTDModel,
    DetectorConfig,
    TasteDetector,
    ThresholdPolicy,
    TrainConfig,
    fine_tune,
)
from repro.datagen import make_gittables_corpus
from repro.db import CloudDatabaseServer, CostModel
from repro.features import FeatureConfig, Featurizer, corpus_texts
from repro.text import Tokenizer

SENSITIVE_TYPES = {
    "person.ssn": "SSN",
    "person.passport": "passport number",
    "finance.credit_card": "payment card",
    "finance.iban": "bank account",
    "person.email": "email address",
    "person.phone": "phone number",
}

# Latencies shaped like the paper's VPC setup (ECS <-> RDS, ~5 ms RTT).
CLOUD_LATENCY = CostModel(
    connect_latency=10e-3,
    round_trip_latency=5e-3,
    metadata_per_table=2e-3,
    scan_fixed=10e-3,
    scan_per_row=2e-4,
)


def main() -> None:
    corpus = make_gittables_corpus(num_tables=int(os.environ.get("EXAMPLE_TABLES", 120)))
    tokenizer = Tokenizer.train(corpus_texts(corpus.train), max_size=2500)
    featurizer = Featurizer(tokenizer, corpus.registry, FeatureConfig())
    encoder = nn.EncoderConfig(
        num_layers=2, num_heads=4, hidden_size=64, intermediate_size=128,
        max_seq_len=512, vocab_size=len(tokenizer),
    )
    model = ADTDModel(ADTDConfig(encoder, num_labels=corpus.registry.num_labels))
    print("fine-tuning the detector...")
    fine_tune(model, featurizer, corpus.train, TrainConfig(epochs=int(os.environ.get("EXAMPLE_EPOCHS", 16))))

    # Compare sequential vs pipelined execution over the tenant's tables.
    timings = {}
    reports = {}
    for mode, pipelined in (("sequential", False), ("pipelined", True)):
        server = CloudDatabaseServer.from_tables(corpus.test, CLOUD_LATENCY)
        detector = TasteDetector(
            model, featurizer, ThresholdPolicy(0.1, 0.9),
            config=DetectorConfig(pipelined=pipelined),
        )
        report = detector.detect(server)
        timings[mode] = report.wall_seconds
        reports[mode] = (report, server)

    report, server = reports["pipelined"]
    speedup = (timings["sequential"] - timings["pipelined"]) / timings["sequential"]
    print(f"\nprocessed {len(report.tables)} tables / {report.num_columns} columns")
    print(f"sequential: {timings['sequential']:.2f}s   "
          f"pipelined: {timings['pipelined']:.2f}s   ({speedup:.0%} faster)")
    print(f"content scanned for {report.scanned_ratio():.1%} of columns; "
          f"latent cache hits: {report.cache_hits}")

    print("\nsensitive columns found:")
    found = 0
    for prediction in report.predictions:
        tags = [SENSITIVE_TYPES[t] for t in prediction.admitted_types if t in SENSITIVE_TYPES]
        if tags:
            found += 1
            via = "metadata only" if prediction.phase == 1 else "content verified"
            print(f"  {prediction.table_name}.{prediction.column_name:20s} "
                  f"-> {', '.join(tags):18s} ({via})")
    print(f"\n{found} sensitive columns tagged; database-side cost: "
          f"{server.ledger.snapshot()}")


if __name__ == "__main__":
    main()
