"""Strict-privacy mode: semantic typing without ever reading user data.

Tenants who disallow content access can run TASTE with α = β, which
disables Phase 2 completely — the detector then works from metadata alone.
This example compares full TASTE against the privacy mode on the same
tables and reports the quality cost of never scanning (paper Table 4).

Run:  python examples/privacy_mode.py
"""

from __future__ import annotations

import os

from repro import nn
from repro.core import ADTDConfig, ADTDModel, TasteDetector, ThresholdPolicy, TrainConfig, fine_tune
from repro.datagen import make_wikitable_corpus
from repro.db import CloudDatabaseServer, CostModel
from repro.features import FeatureConfig, Featurizer, corpus_texts
from repro.metrics import ground_truth_map, micro_prf
from repro.text import Tokenizer


def main() -> None:
    corpus = make_wikitable_corpus(num_tables=int(os.environ.get("EXAMPLE_TABLES", 120)))
    tokenizer = Tokenizer.train(corpus_texts(corpus.train), max_size=2500)
    featurizer = Featurizer(tokenizer, corpus.registry, FeatureConfig())
    encoder = nn.EncoderConfig(
        num_layers=2, num_heads=4, hidden_size=64, intermediate_size=128,
        max_seq_len=512, vocab_size=len(tokenizer),
    )
    model = ADTDModel(ADTDConfig(encoder, num_labels=corpus.registry.num_labels))
    print("fine-tuning (one model serves both modes — multi-task learning)...")
    fine_tune(model, featurizer, corpus.train, TrainConfig(epochs=int(os.environ.get("EXAMPLE_EPOCHS", 16))))

    ground_truth = ground_truth_map(corpus.test)

    policies = {
        "full TASTE (alpha=0.1, beta=0.9)": ThresholdPolicy(0.1, 0.9),
        "privacy mode (alpha=beta=0.5) ": ThresholdPolicy.privacy_mode(),
    }
    print(f"\n{'mode':36s} {'F1':>8s} {'scanned':>9s} {'I/O (s)':>9s}")
    for label, policy in policies.items():
        server = CloudDatabaseServer.from_tables(corpus.test, CostModel())
        detector = TasteDetector(model, featurizer, policy)
        report = detector.detect(server)
        prf = micro_prf(report.predicted_labels(), ground_truth)
        print(
            f"{label:36s} {prf.f1:8.4f} {report.scanned_ratio():8.1%} "
            f"{report.cost['simulated_seconds']:9.3f}"
        )
    print(
        "\nIn privacy mode the cloud service issued ZERO content scans —\n"
        "only information_schema metadata left the tenant database."
    )


if __name__ == "__main__":
    main()
