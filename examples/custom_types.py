"""Extending the domain set with user-defined semantic types.

One of the paper's future-work directions is integrating domain-specific
and user-defined semantic types. The registry makes that a data change, not
a code change: define the type (value generator + naming conventions),
rebuild the corpus, and fine-tune. This example adds two telecom-flavoured
types — IMEI numbers (with their real Luhn check digit) and cell tower ids —
and shows the detector picking them up.

Run:  python examples/custom_types.py
"""

from __future__ import annotations

import os

import numpy as np

from repro import nn
from repro.core import ADTDConfig, ADTDModel, TasteDetector, ThresholdPolicy, TrainConfig, fine_tune
from repro.datagen import SemanticType, TypeRegistry, default_registry, make_wikitable_corpus
from repro.datagen.values import luhn_checksum_digit
from repro.db import CloudDatabaseServer, CostModel
from repro.features import FeatureConfig, Featurizer, corpus_texts
from repro.metrics import ground_truth_map, micro_prf
from repro.text import Tokenizer


def imei(rng: np.random.Generator) -> str:
    body = "35" + "".join(str(int(d)) for d in rng.integers(0, 10, 12))
    return body + luhn_checksum_digit(body)


def cell_tower_id(rng: np.random.Generator) -> str:
    return (
        f"460-{int(rng.integers(0, 20)):02d}-"
        f"{int(rng.integers(1, 65535))}-{int(rng.integers(1, 268435455))}"
    )


CUSTOM_TYPES = [
    SemanticType(
        "telecom.imei", "telecom", "varchar", imei,
        clean_names=("imei", "device_imei"),
        ambiguous_names=("num", "number", "no"),
        comments=("mobile equipment identity",),
        ambiguity_weight=0.2,
    ),
    SemanticType(
        "telecom.cell_tower", "telecom", "varchar", cell_tower_id,
        clean_names=("cell_id", "tower_id", "cgi"),
        ambiguous_names=("id", "identifier", "key"),
        comments=("cell global identity",),
        ambiguity_weight=0.2,
    ),
]


def main() -> None:
    registry = TypeRegistry(list(default_registry().types) + CUSTOM_TYPES)
    print(f"domain set extended to {len(registry)} types "
          f"(added: {[t.name for t in CUSTOM_TYPES]})")

    corpus = make_wikitable_corpus(num_tables=int(os.environ.get("EXAMPLE_TABLES", 120)), registry=registry)
    tokenizer = Tokenizer.train(corpus_texts(corpus.train), max_size=2500)
    featurizer = Featurizer(tokenizer, registry, FeatureConfig())
    encoder = nn.EncoderConfig(
        num_layers=2, num_heads=4, hidden_size=64, intermediate_size=128,
        max_seq_len=512, vocab_size=len(tokenizer),
    )
    model = ADTDModel(ADTDConfig(encoder, num_labels=registry.num_labels))
    print("fine-tuning with the extended domain set...")
    fine_tune(model, featurizer, corpus.train, TrainConfig(epochs=int(os.environ.get("EXAMPLE_EPOCHS", 16))))

    server = CloudDatabaseServer.from_tables(corpus.test, CostModel())
    detector = TasteDetector(model, featurizer, ThresholdPolicy(0.1, 0.9))
    report = detector.detect(server)

    ground_truth = ground_truth_map(corpus.test)
    prf = micro_prf(report.predicted_labels(), ground_truth)
    print(f"\noverall F1 with custom types in play: {prf.f1:.4f}")

    print("\ncolumns detected as custom types:")
    for prediction in report.predictions:
        custom = [t for t in prediction.admitted_types if t.startswith("telecom.")]
        if custom:
            truth = ground_truth[(prediction.table_name, prediction.column_name)]
            flag = "correct" if set(custom) <= set(truth) else "WRONG"
            print(f"  {prediction.table_name}.{prediction.column_name:18s} "
                  f"-> {custom} [{flag}, phase {prediction.phase}]")


if __name__ == "__main__":
    main()
